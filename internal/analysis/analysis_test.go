package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot locates the repository root (the directory with go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	return root
}

// TestRepoInvariants is the tier-1 gate: the whole repository must pass
// every analyzer of the default suite, modulo the checked-in baseline.
// This is the test that keeps the invariants intact forever — a new
// finding fails `go test ./...`, not just the optional nova-vet run.
func TestRepoInvariants(t *testing.T) {
	root := repoRoot(t)
	diags, err := RunSuite(root)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBaseline(filepath.Join(root, BaselineFile))
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed, stale := ApplyBaseline(root, diags, baseline)
	t.Logf("%d finding(s) total, %d baselined", len(diags), suppressed)
	for _, key := range stale {
		t.Logf("stale baseline entry (finding fixed — delete the line): %s", key)
	}
	for _, d := range kept {
		t.Errorf("new invariant violation: %s", d)
	}
}

// TestLoaderCoversRepo sanity-checks the source loader: every package
// the analyzers depend on must load and type-check.
func TestLoaderCoversRepo(t *testing.T) {
	prog, err := LoadRepo(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range append(append([]string{}, SimCriticalPackages...), EntryPointPackages...) {
		if prog.Package(path) == nil {
			t.Errorf("suite package %s not loaded", path)
		}
	}
	if len(prog.Pkgs) < 15 {
		t.Errorf("suspiciously few packages loaded: %d", len(prog.Pkgs))
	}
}

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// expectation is one `// want "substring"` comment in a fixture.
type expectation struct {
	file string // base name
	line int
	want string
}

// fixtureExpectations scans a loaded fixture package for want comments.
func fixtureExpectations(prog *Program, pkg *Package) []expectation {
	var exps []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				exps = append(exps, expectation{filepath.Base(pos.Filename), pos.Line, m[1]})
			}
		}
	}
	return exps
}

// TestAnalyzersOnFixtures runs each analyzer over its testdata fixture
// package and requires an exact match between reported diagnostics and
// the `// want "..."` comments: every seeded violation is caught, and
// nothing else is flagged.
func TestAnalyzersOnFixtures(t *testing.T) {
	root := repoRoot(t)
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{Determinism, "determinism"},
		{Capcheck, "capcheck"},
		{Capflow, "capflow"},
		{Chargecheck, "chargecheck"},
		{Nopanic, "nopanic"},
		{Exhaustive, "exhaustive"},
		{Taint, "taint"},
		{Tracepure, "tracepure"},
		{Globalstate, "globalstate"},
		{Isolation, "isolation"},
		{Concurrency, "concurrency"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", tc.dir)
			prog, err := LoadDirs(root, []string{dir})
			if err != nil {
				t.Fatal(err)
			}
			pkg := prog.Pkgs[0]
			diags := tc.analyzer.Run(prog, []*Package{pkg})
			exps := fixtureExpectations(prog, pkg)
			if len(exps) == 0 {
				t.Fatalf("fixture %s has no want comments", tc.dir)
			}

			matched := make([]bool, len(diags))
			for _, exp := range exps {
				found := false
				for i, d := range diags {
					if matched[i] {
						continue
					}
					if filepath.Base(d.Pos.Filename) == exp.file && d.Pos.Line == exp.line && strings.Contains(d.Message, exp.want) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("expected diagnostic at %s:%d containing %q, got none", exp.file, exp.line, exp.want)
				}
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestBaselineRoundTrip checks the baseline format: findings written
// with FormatBaseline are accepted back by LoadBaseline and suppress
// exactly themselves.
func TestBaselineRoundTrip(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", "nopanic")
	prog, err := LoadDirs(root, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	diags := Nopanic.Run(prog, []*Package{prog.Pkgs[0]})
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}

	path := filepath.Join(t.TempDir(), "baseline")
	if err := os.WriteFile(path, []byte(FormatBaseline(root, diags)), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed, stale := ApplyBaseline(root, diags, baseline)
	if len(kept) != 0 || suppressed != len(diags) || len(stale) != 0 {
		t.Errorf("round trip: kept=%d suppressed=%d stale=%d, want 0/%d/0", len(kept), suppressed, len(stale), len(diags))
	}

	// A baseline for a different finding is stale and suppresses nothing.
	other := map[string]bool{"nopanic\tno/such/file.go\tmessage": true}
	kept, suppressed, stale = ApplyBaseline(root, diags, other)
	if len(kept) != len(diags) || suppressed != 0 || len(stale) != 1 {
		t.Errorf("stale baseline: kept=%d suppressed=%d stale=%d, want %d/0/1", len(kept), suppressed, len(stale), len(diags))
	}
}

// TestLoadBaselineMalformed rejects lines that are not three tab-
// separated fields, so a corrupted baseline fails loudly instead of
// silently suppressing everything or nothing.
func TestLoadBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline")
	if err := os.WriteFile(path, []byte("# comment ok\nnot a valid line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	missing, err := LoadBaseline(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing baseline should be empty, got %v, %v", missing, err)
	}
}
