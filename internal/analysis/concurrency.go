package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Concurrency keeps the simulation single-goroutine until the parallel
// engine arrives through its audited gate. The determinism and
// isolation arguments both assume sequential execution: a goroutine, a
// channel, a mutex or an atomic anywhere in sim-critical code would
// introduce host-scheduling order into the simulated machine's
// observable results. The planned deterministic parallel multi-VM
// engine (epoch-barrier sharding) must therefore be the ONLY place
// concurrency enters, and it announces itself: a function annotated
// `// epoch-barrier: <why>` in its doc comment is the audited layer and
// may use any primitive; everywhere else in a sim-critical package the
// analyzer forbids:
//
//   - go statements;
//   - channel operations (send, receive, close, select, range over a
//     channel, make(chan));
//   - any use of sync or sync/atomic (including types in struct
//     fields — a mutex in per-machine state is latent concurrency);
//   - scheduling calls (runtime.Gosched and friends, time.Sleep).
var Concurrency = &Analyzer{
	Name: "concurrency",
	Doc:  "forbid goroutines, channels, sync/atomic and scheduling calls in sim-critical packages outside // epoch-barrier: functions",
	run:  runConcurrency,
}

// schedFuncs are the runtime package's scheduling-visible calls.
var schedFuncs = map[string]bool{
	"Gosched": true, "Goexit": true, "GOMAXPROCS": true,
	"LockOSThread": true, "UnlockOSThread": true, "NumGoroutine": true,
}

func runConcurrency(pass *Pass) {
	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if funcAnnotated(fd, markEpochBarrier) {
						continue // the audited gate
					}
					checkConcurrency(pass, pkg, fd)
					continue
				}
				checkConcurrency(pass, pkg, decl)
			}
		}
	}
}

func checkConcurrency(pass *Pass, pkg *Package, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in sim-critical package %s (parallelism may only enter through the // epoch-barrier: gate)", pkg.Path)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in sim-critical package %s (cross-goroutine communication outside the epoch-barrier gate)", pkg.Path)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in sim-critical package %s (cross-goroutine communication outside the epoch-barrier gate)", pkg.Path)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select statement in sim-critical package %s (cross-goroutine communication outside the epoch-barrier gate)", pkg.Path)
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(), "range over channel in sim-critical package %s (cross-goroutine communication outside the epoch-barrier gate)", pkg.Path)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "close":
						pass.Reportf(n.Pos(), "channel close in sim-critical package %s (cross-goroutine communication outside the epoch-barrier gate)", pkg.Path)
					case "make":
						if len(n.Args) > 0 {
							if tv, ok := pkg.Info.Types[n.Args[0]]; ok && tv.IsType() {
								if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
									pass.Reportf(n.Pos(), "channel construction in sim-critical package %s (cross-goroutine communication outside the epoch-barrier gate)", pkg.Path)
								}
							}
						}
					}
				}
			}
		case *ast.SelectorExpr:
			obj := pkg.Info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				pass.Reportf(n.Pos(), "sync/atomic use %s.%s in sim-critical package %s (host synchronization outside the epoch-barrier gate)", obj.Pkg().Name(), obj.Name(), pkg.Path)
			case "runtime":
				if schedFuncs[obj.Name()] {
					pass.Reportf(n.Pos(), "scheduling call runtime.%s in sim-critical package %s (host scheduling must not influence the simulation)", obj.Name(), pkg.Path)
				}
			case "time":
				if obj.Name() == "Sleep" {
					pass.Reportf(n.Pos(), "scheduling call time.Sleep in sim-critical package %s (host scheduling must not influence the simulation)", pkg.Path)
				}
			}
		}
		return true
	})
}
