package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Chargecheck enforces cycle accounting: an exported kernel or
// device-model entry point that mutates simulated platform state must
// charge virtual time for the work, or the benchmarks silently measure
// a hot path as free. The check is a reachability heuristic over the
// whole program's static call graph:
//
//   - charge sinks are (*hw.Clock).Charge and Kernel.charge /
//     Kernel.ChargeUser (matched by receiver-type and method name, so
//     fixture packages can model them);
//   - an entry point is an exported pointer-receiver method in a target
//     package whose body mutates state — assigns through the receiver,
//     deletes from a receiver-reachable map, or calls a known platform
//     mutator (PortWrite, MMIOWrite, WriteBytes, RaiseIRQ, ...);
//   - the entry point is OK if any statically resolvable call chain
//     from it reaches a charge sink.
//
// Reachability runs over the shared program-wide call graph
// (callgraph.go), which also resolves method values and interface
// calls, so a charge that happens inside a stored handler (EC.Run) or
// behind an interface still counts.
//
// Setup-time entry points that intentionally do unaccounted work (VM
// construction, test plumbing) carry a `// nocharge: <reason>` comment
// on the line directly above the declaration.
var Chargecheck = &Analyzer{
	Name: "chargecheck",
	Doc:  "exported mutating entry points must charge cycles via the cost model",
	run:  runChargecheck,
}

// platformMutators are method names that write simulated hardware state
// regardless of which object they are invoked on.
var platformMutators = map[string]bool{
	"PortWrite": true, "MMIOWrite": true, "WriteBytes": true,
	"Write8": true, "Write16": true, "Write32": true,
	"RaiseIRQ": true, "LowerIRQ": true,
}

func runChargecheck(pass *Pass) {
	reach := pass.Prog.CallGraph().ReachesAny(isChargeSink)

	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if isChargeSink(fn) {
					continue // ChargeUser itself is the accounting API
				}
				if hasNochargeComment(pass.Prog, pkg, fd) {
					continue
				}
				if !mutatesState(pkg, fd) {
					continue
				}
				if !reach[fn] {
					pass.Reportf(fd.Pos(), "exported entry point %s.%s mutates simulated state but no call path reaches Clock.Charge/Kernel.charge (cycle-accounting gap)", recvTypeName(fd), fd.Name.Name)
				}
			}
		}
	}
}

// isChargeSink reports whether fn is one of the cycle-accounting
// primitives: Clock.Charge, or Kernel.charge/ChargeUser.
func isChargeSink(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Clock":
		return fn.Name() == "Charge"
	case "Kernel":
		return fn.Name() == "charge" || fn.Name() == "ChargeUser"
	}
	return false
}

// mutatesState reports whether the method body writes simulated state:
// an assignment or ++/-- rooted at the receiver, a delete() builtin, or
// a call to a known platform mutator.
func mutatesState(pkg *Package, fd *ast.FuncDecl) bool {
	recvObj := receiverVar(pkg, fd)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootIsVar(pkg, lhs, recvObj) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if rootIsVar(pkg, n.X, recvObj) {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "delete" {
					if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if platformMutators[fun.Sel.Name] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// receiverVar returns the receiver's *types.Var, or nil for an unnamed
// receiver.
func receiverVar(pkg *Package, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pkg.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// rootIsVar unwraps selector/index/star/paren chains and reports
// whether the base identifier resolves to v.
func rootIsVar(pkg *Package, e ast.Expr, v *types.Var) bool {
	if v == nil {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return pkg.Info.Uses[x] == v
		default:
			return false
		}
	}
}

// hasNochargeComment reports whether a `// nocharge:` annotation
// directly precedes the declaration (doc comment or detached comment
// ending on the line above).
func hasNochargeComment(prog *Program, pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "nocharge:") {
		return true
	}
	declLine := prog.Fset.Position(fd.Pos()).Line
	file := prog.Fset.Position(fd.Pos()).Filename
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			end := prog.Fset.Position(cg.End())
			if end.Filename == file && end.Line == declLine-1 && strings.Contains(cg.Text(), "nocharge:") {
				return true
			}
		}
	}
	return false
}
