package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Chargecheck enforces cycle accounting: an exported kernel or
// device-model entry point that mutates simulated platform state must
// charge virtual time for the work, or the benchmarks silently measure
// a hot path as free. The check is a reachability heuristic over the
// whole program's static call graph:
//
//   - charge sinks are (*hw.Clock).Charge and Kernel.charge /
//     Kernel.ChargeUser (matched by receiver-type and method name, so
//     fixture packages can model them);
//   - an entry point is an exported pointer-receiver method in a target
//     package whose body mutates state — assigns through the receiver,
//     deletes from a receiver-reachable map, or calls a known platform
//     mutator (PortWrite, MMIOWrite, WriteBytes, RaiseIRQ, ...);
//   - the entry point is OK if any statically resolvable call chain
//     from it reaches a charge sink.
//
// Reachability runs over the shared program-wide call graph
// (callgraph.go), which also resolves method values and interface
// calls, so a charge that happens inside a stored handler (EC.Run) or
// behind an interface still counts.
//
// Setup-time entry points that intentionally do unaccounted work (VM
// construction, test plumbing) carry a `// nocharge: <reason>` comment
// on the line directly above the declaration.
//
// The superblock layer adds a batching rule: StepBlock retires a fused
// run of instructions with no per-instruction charges, so every
// `.StepBlock(...)` call site must be followed — in a sibling
// statement, before any statement that steps again — by a charge-sink
// call that batch-charges the block. Functions named StepBlock must
// additionally never reach a wall-clock read: the fused loop runs
// between two virtual-time charges and must advance virtual time only.
var Chargecheck = &Analyzer{
	Name: "chargecheck",
	Doc:  "exported mutating entry points must charge cycles via the cost model",
	run:  runChargecheck,
}

// platformMutators are method names that write simulated hardware state
// regardless of which object they are invoked on.
var platformMutators = map[string]bool{
	"PortWrite": true, "MMIOWrite": true, "WriteBytes": true,
	"Write8": true, "Write16": true, "Write32": true,
	"RaiseIRQ": true, "LowerIRQ": true,
}

func runChargecheck(pass *Pass) {
	reach := pass.Prog.CallGraph().ReachesAny(isChargeSink)

	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if isChargeSink(fn) {
					continue // ChargeUser itself is the accounting API
				}
				if hasNochargeComment(pass.Prog, pkg, fd) {
					continue
				}
				if !mutatesState(pkg, fd) {
					continue
				}
				if !reach[fn] {
					pass.Reportf(fd.Pos(), "exported entry point %s.%s mutates simulated state but no call path reaches Clock.Charge/Kernel.charge (cycle-accounting gap)", recvTypeName(fd), fd.Name.Name)
				}
			}
		}
	}

	reportStepBlockSites(pass)
}

// reportStepBlockSites enforces the superblock batching contract.
// StepBlock retires a whole fused run with no per-instruction charges,
// so every call site must batch-charge the block before stepping again:
// some sibling statement after the one containing the `.StepBlock(...)`
// call — at any enclosing block level — must call a charge sink before
// any statement that steps again. The rule is deliberately syntactic
// rather than reachability-based: the batch charge must stay adjacent
// to the fused call, or a refactor could float it out of the per-block
// loop and the fused path would retire instructions for free.
//
// Functions *named* StepBlock are additionally held to the fused
// loop's purity line: they must not reach a wall-clock read. The loop
// runs between two virtual-time charges; host time leaking in would
// make fused and single-stepped runs diverge.
func reportStepBlockSites(pass *Pass) {
	reachWall := pass.Prog.CallGraph().ReachesAny(isWallClockFunc)
	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Name.Name == "StepBlock" && fd.Recv != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && reachWall[fn] {
						pass.Reportf(fd.Pos(), "%s.StepBlock reaches a wall-clock read (the fused loop must advance virtual time only)", recvTypeName(fd))
					}
				}
				reportUnchargedStepBlocks(pass, pkg, fd)
			}
		}
	}
}

// reportUnchargedStepBlocks flags the StepBlock call sites in fd that
// have no following batch charge.
func reportUnchargedStepBlocks(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	var sites []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isStepCall(call, "StepBlock") {
			sites = append(sites, call)
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	charged := make(map[*ast.CallExpr]bool)
	markChargedSites(pkg, fd.Body, sites, charged)
	for _, call := range sites {
		if !charged[call] {
			pass.Reportf(call.Pos(), "StepBlock call site has no following batch charge (charge the fused block's cycles before stepping again)")
		}
	}
}

// markChargedSites walks every statement list under root and marks the
// StepBlock sites whose holding statement is followed by a charging
// sibling before any further stepping sibling. A site inside a loop
// body is typically marked by that body's list (charge after the fused
// call, once per iteration) even though the loop statement itself has
// no charging sibling in the enclosing list.
func markChargedSites(pkg *Package, root ast.Node, sites []*ast.CallExpr, charged map[*ast.CallExpr]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, s := range list {
			held := sitesIn(s, sites)
			if len(held) == 0 {
				continue
			}
			for _, rest := range list[i+1:] {
				if stmtCharges(pkg, rest) {
					for _, call := range held {
						charged[call] = true
					}
					break
				}
				if stmtSteps(rest) {
					break
				}
			}
		}
		return true
	})
}

// sitesIn returns the tracked StepBlock calls positioned inside stmt.
func sitesIn(stmt ast.Stmt, sites []*ast.CallExpr) []*ast.CallExpr {
	var held []*ast.CallExpr
	for _, call := range sites {
		if call.Pos() >= stmt.Pos() && call.End() <= stmt.End() {
			held = append(held, call)
		}
	}
	return held
}

// isStepCall reports whether call invokes a method with the given
// name. The stepping API is matched by method name, like the charge
// sinks, so fixture packages can model it.
func isStepCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// stmtCharges reports whether stmt contains a call to a charge sink.
func stmtCharges(pkg *Package, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && isChargeSink(fn) {
				found = true
			}
		}
		return !found
	})
	return found
}

// stmtSteps reports whether stmt contains another stepping call (Step
// or StepBlock).
func stmtSteps(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && (isStepCall(call, "Step") || isStepCall(call, "StepBlock")) {
			found = true
		}
		return !found
	})
	return found
}

// isChargeSink reports whether fn is one of the cycle-accounting
// primitives: Clock.Charge, or Kernel.charge/ChargeUser.
func isChargeSink(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Clock":
		return fn.Name() == "Charge"
	case "Kernel":
		return fn.Name() == "charge" || fn.Name() == "ChargeUser"
	}
	return false
}

// mutatesState reports whether the method body writes simulated state:
// an assignment or ++/-- rooted at the receiver, a delete() builtin, or
// a call to a known platform mutator.
func mutatesState(pkg *Package, fd *ast.FuncDecl) bool {
	recvObj := receiverVar(pkg, fd)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootIsVar(pkg, lhs, recvObj) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if rootIsVar(pkg, n.X, recvObj) {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "delete" {
					if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if platformMutators[fun.Sel.Name] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// receiverVar returns the receiver's *types.Var, or nil for an unnamed
// receiver.
func receiverVar(pkg *Package, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pkg.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// rootIsVar unwraps selector/index/star/paren chains and reports
// whether the base identifier resolves to v.
func rootIsVar(pkg *Package, e ast.Expr, v *types.Var) bool {
	if v == nil {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return pkg.Info.Uses[x] == v
		default:
			return false
		}
	}
}

// hasNochargeComment reports whether a `// nocharge:` annotation
// directly precedes the declaration (doc comment or detached comment
// ending on the line above).
func hasNochargeComment(prog *Program, pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "nocharge:") {
		return true
	}
	declLine := prog.Fset.Position(fd.Pos()).Line
	file := prog.Fset.Position(fd.Pos()).Filename
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			end := prog.Fset.Position(cg.End())
			if end.Filename == file && end.Line == declLine-1 && strings.Contains(cg.Text(), "nocharge:") {
				return true
			}
		}
	}
	return false
}
