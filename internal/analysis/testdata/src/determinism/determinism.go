// Package fixture seeds determinism violations for the analyzer tests.
package fixture

import (
	"math/rand"
	"time"
)

// Cycles stands in for hw.Cycles.
type Cycles uint64

// BadWallClock reads the host clock inside sim-critical code.
func BadWallClock() int64 {
	t := time.Now() // want "wall-clock use time.Now"
	return t.UnixNano()
}

// BadSince derives a duration from the wall clock.
func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock use time.Since"
}

// BadGlobalRand draws from the process-global source.
func BadGlobalRand(n int) int {
	return rand.Intn(n) // want "global math/rand source rand.Intn"
}

// BadMapRange iterates a map, whose order Go randomizes per run.
func BadMapRange(m map[int]Cycles) Cycles {
	var sum Cycles
	for _, v := range m { // want "for-range over map type"
		sum += v
	}
	return sum
}

// GoodDurationMath uses time only for pure value arithmetic.
func GoodDurationMath(d time.Duration) time.Duration { return 2 * d }

// GoodSeededRand builds an explicitly seeded private source.
func GoodSeededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// GoodSliceRange iterates a slice: deterministic order.
func GoodSliceRange(s []Cycles) Cycles {
	var sum Cycles
	for _, v := range s {
		sum += v
	}
	return sum
}
