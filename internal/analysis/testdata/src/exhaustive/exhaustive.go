// Fixture for the exhaustive analyzer: switches over local enum types
// (named integer types with two or more package-level constants).
package fixture

// Reason models an exit-reason style enum.
type Reason int

const (
	ReasonIO Reason = iota
	ReasonMMIO
	ReasonHalt
)

// full covers every constant: clean.
func full(r Reason) int {
	switch r {
	case ReasonIO:
		return 1
	case ReasonMMIO:
		return 2
	case ReasonHalt:
		return 3
	}
	return 0
}

// defaulted has a default arm: clean regardless of coverage.
func defaulted(r Reason) int {
	switch r {
	case ReasonIO:
		return 1
	default:
		return 0
	}
}

// missing covers one of three constants and has no default arm.
func missing(r Reason) int {
	switch r { // want "missing ReasonHalt, ReasonMMIO"
	case ReasonIO:
		return 1
	}
	return 0
}

// dynamic has a non-constant case clause: exempt (value coverage is
// not decidable statically).
func dynamic(r, x Reason) int {
	switch r {
	case x:
		return 1
	}
	return 0
}

// Op has an alias constant: coverage is judged by value, not by name.
type Op int

const (
	OpRead  Op = 1
	OpWrite Op = 2
	OpLoad  Op = 1 // alias of OpRead
)

// aliased is clean: OpLoad covers OpRead's value.
func aliased(o Op) int {
	switch o {
	case OpLoad, OpWrite:
		return 1
	}
	return 0
}

// lone has a single constant, so it is not treated as an enum.
type lone int

const loneOnly lone = 0

func loneSwitch(v lone) int {
	switch v {
	case loneOnly:
		return 1
	}
	return 0
}

// plain switches over a basic type: never an enum.
func plain(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
