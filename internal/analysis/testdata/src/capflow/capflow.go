// Package capflow exercises the capflow analyzer: a miniature kernel
// with the same capability vocabulary as nova/internal/cap (same
// constant values, distinct types) and hypercall-shaped methods that
// violate — or honour — each of the three rules. The Fix* rows of
// HypercallRights in caprights.go declare these methods' contracts.
package capflow

import "errors"

type Rights uint8

const (
	RightRead Rights = 1 << iota
	RightWrite
	RightExec
	RightCtrl
	RightCall
)

type ObjType uint8

const (
	ObjNull ObjType = iota
	ObjPD
	ObjEC
	ObjSC
	ObjPortal
	ObjSemaphore
)

type Object any

type Capability struct {
	Obj    Object
	Type   ObjType
	Rights Rights
}

var errLookup = errors.New("no capability")

type Space struct {
	slots map[uint32]Capability
}

func (s *Space) Lookup(sel uint32) (Capability, error) {
	if c, ok := s.slots[sel]; ok {
		return c, nil
	}
	return Capability{}, errLookup
}

func (s *Space) LookupTyped(sel uint32, t ObjType, need Rights) (Capability, error) {
	c, err := s.Lookup(sel)
	if err != nil || c.Type != t || c.Rights&need != need {
		return Capability{}, errLookup
	}
	return c, nil
}

func (s *Space) LookupObj(obj Object, t ObjType, need Rights) (Capability, error) {
	for _, c := range s.slots {
		if c.Obj == obj && c.Type == t && c.Rights&need == need {
			return c, nil
		}
	}
	return Capability{}, errLookup
}

func (s *Space) Insert(sel uint32, obj Object, t ObjType, r Rights) error {
	if s.slots == nil {
		s.slots = make(map[uint32]Capability)
	}
	s.slots[sel] = Capability{Obj: obj, Type: t, Rights: r}
	return nil
}

type PD struct {
	Name string
	Caps *Space
	dead bool
}

type EC struct {
	PD   *PD
	SC   *SC
	prio int
}

type SC struct {
	EC *EC
}

type Semaphore struct {
	Counter int64
	waiters []*EC
}

type Portal struct {
	Name   string
	Handle func() error
}

type Kernel struct {
	sems  []*Semaphore
	stash *EC
}

// FixSignalBadRights demands read rights but then mutates the
// semaphore: rule 1 (sufficiency) fires.
func (k *Kernel) FixSignalBadRights(caller *PD, sm *Semaphore) error {
	if _, err := caller.Caps.LookupObj(sm, ObjSemaphore, RightRead); err != nil { // want "requires"
		return err
	}
	sm.Counter++
	return nil
}

// FixSignalOK is the corrected twin: call rights cover the signal.
func (k *Kernel) FixSignalOK(caller *PD, sm *Semaphore) error {
	if _, err := caller.Caps.LookupObj(sm, ObjSemaphore, RightCall); err != nil {
		return err
	}
	sm.Counter++
	return nil
}

// FixOverRequest demands control AND call rights but only performs a
// state write: rule 2 (least privilege) flags the unexercised call bit.
func (k *Kernel) FixOverRequest(caller *PD, ec *EC) error {
	if _, err := caller.Caps.LookupObj(ec, ObjEC, RightCtrl|RightCall); err != nil { // want "never exercises"
		return err
	}
	ec.prio = 1
	return nil
}

// FixRetain stashes the looked-up semaphore in kernel state without a
// caphold annotation: rule 3 (lifetime) fires.
func (k *Kernel) FixRetain(caller *PD, sm *Semaphore) error {
	if _, err := caller.Caps.LookupObj(sm, ObjSemaphore, RightCtrl); err != nil { // want "without a caphold annotation"
		return err
	}
	k.sems = append(k.sems, sm)
	return nil
}

// FixHold is the audited twin: the hold is annotated and its teardown
// is the destruction root, so the retention is accepted (and, per the
// operation→rights table, consumes the control right it demanded).
func (k *Kernel) FixHold(caller *PD, sm *Semaphore) error {
	if _, err := caller.Caps.LookupObj(sm, ObjSemaphore, RightCtrl); err != nil {
		return err
	}
	// caphold: audited fixture registry, emptied on domain destruction; teardown=DestroyPD
	k.sems = append(k.sems, sm)
	return nil
}

// DestroyPD is the fixture's destruction root (sharing the real
// hypercall's table row): it releases everything the kernel holds.
func (k *Kernel) DestroyPD(caller *PD, pd *PD) error {
	if _, err := caller.Caps.LookupObj(pd, ObjPD, RightCtrl); err != nil {
		return err
	}
	pd.dead = true
	k.sems = nil
	k.stash = nil
	return nil
}

// FixHoldBadTeardown annotates its hold, but the named teardown is not
// on any destruction path: the hold is still a leak.
func (k *Kernel) FixHoldBadTeardown(caller *PD, ec *EC) error {
	if _, err := caller.Caps.LookupObj(ec, ObjEC, RightCtrl); err != nil { // want "not a destruction root"
		return err
	}
	// caphold: stash with a teardown outside every destruction path; teardown=FixHelperPark
	k.stash = ec
	return nil
}

// FixHelperPark releases the stash but nothing ever calls it from a
// destruction root, so naming it as a teardown proves nothing.
func (k *Kernel) FixHelperPark() {
	k.stash = nil
}

// FixChain leaks through a callee: the helper stores its argument into
// kernel state, and the escape is mapped back to the hypercall's
// lookup interprocedurally.
func (k *Kernel) FixChain(caller *PD, ec *EC) error {
	if _, err := caller.Caps.LookupObj(ec, ObjEC, RightCtrl); err != nil { // want "without a caphold annotation"
		return err
	}
	k.park(ec)
	return nil
}

func (k *Kernel) park(ec *EC) {
	k.stash = ec
}

// FixDrift has a table row declaring an EC validation, but the body
// performs no lookup at all: specification/implementation drift.
func (k *Kernel) FixDrift(caller *PD, ec *EC) error { // want "performs no such"
	ec.prio = 2
	return nil
}

// FixUnlisted is a hypercall with no table row at all.
func (k *Kernel) FixUnlisted(caller *PD, sm *Semaphore) error { // want "no entry in the capability-rights table"
	if _, err := caller.Caps.LookupObj(sm, ObjSemaphore, RightCall); err != nil {
		return err
	}
	sm.Counter++
	return nil
}

// FixCallPortal traverses a portal through a selector-based lookup with
// call rights: the invocation through the Capability's Obj is covered.
func (k *Kernel) FixCallPortal(caller *PD, sel uint32) error {
	c, err := caller.Caps.LookupTyped(sel, ObjPortal, RightCall)
	if err != nil {
		return err
	}
	pt := c.Obj.(*Portal)
	return pt.Handle()
}

// FixCallBadRights traverses the portal having demanded only read
// rights: rule 1 fires on the invocation.
func (k *Kernel) FixCallBadRights(caller *PD, sel uint32) error {
	c, err := caller.Caps.LookupTyped(sel, ObjPortal, RightRead) // want "requires"
	if err != nil {
		return err
	}
	pt := c.Obj.(*Portal)
	return pt.Handle()
}

// stealCap mutates a capability space outside the kernel: every such
// call must go through a hypercall, where validation and accounting
// live.
func stealCap(pd *PD, sel uint32) {
	pd.Caps.Insert(sel, pd, ObjPD, RightCtrl) // want "bypass"
}

var _ = stealCap
