// Fixture for the taint analyzer. Local types named UTCB / VMExit /
// CPUState model the hypervisor's guest-state carriers (the analyzer
// matches source types by name, like chargecheck's Kernel), and a local
// FetchByte models the decoder's guest instruction-stream reader.
package fixture

// VMExit models hypervisor.VMExit: every field is guest-controlled.
type VMExit struct {
	Reason int
	Port   uint16
	GPA    uint64
	Qual   uint64
}

// CPUState models x86.CPUState.
type CPUState struct {
	IP uint32
}

// UTCB models hypervisor.UTCB.
type UTCB struct {
	Words []uint64
	N     int
}

// FetchByte models the decoder's instruction-stream reader; its result
// is intrinsically guest-controlled.
func FetchByte() byte { return 0x90 }

// direct: a guest-state field flows straight into an index.
func direct(e *VMExit, tbl []byte) byte {
	return tbl[e.Reason] // want "reaches slice/array index"
}

// Two-hop interprocedural flow: the source is read in route, travels
// through step1 into step2, and only sinks there.
func route(e *VMExit, tbl []byte) byte {
	return step1(tbl, int(e.Reason))
}

func step1(tbl []byte, i int) byte {
	return step2(tbl, i)
}

func step2(tbl []byte, i int) byte {
	return tbl[i] // want "passed to parameter i of taint.step2"
}

// intrinsic: the result of a guest-memory reader is tainted.
func intrinsic(tbl []byte) byte {
	b := FetchByte()
	return tbl[b] // want "guest memory via FetchByte"
}

// shifted: a guest field used as a shift amount.
func shifted(e *VMExit) uint32 {
	return uint32(1) << e.Port // want "reaches shift amount"
}

// sized: a guest field used as an allocation length.
func sized(e *VMExit) []byte {
	return make([]byte, e.Qual) // want "reaches make length"
}

// resliced: a guest field used as a slice bound.
func resliced(u *UTCB) []uint64 {
	return u.Words[:u.N] // want "reaches slice bound"
}

// ring demonstrates field-based flow: record stores a guest value into
// a struct field, load reads it back in a different function.
type ring struct {
	head uint32
}

func (r *ring) record(s *CPUState) {
	r.head = s.IP
}

func (r *ring) load(tbl []byte) byte {
	return tbl[r.head] // want "reaches slice/array index"
}

// bounded is clean: the index is compared against len before use.
func bounded(e *VMExit, tbl []byte) byte {
	i := int(e.Reason)
	if i < 0 || i >= len(tbl) {
		return 0
	}
	return tbl[i]
}

// annotated is clean: the sink carries a sanitizer annotation.
func annotated(e *VMExit, tbl []byte) byte {
	// sanitized: caller guarantees GPA was range-checked at decode time
	return tbl[e.GPA]
}

// masked is clean: an AND with a constant bounds the value.
func masked(e *VMExit, tbl *[8]byte) byte {
	return tbl[e.Reason&7]
}

// switched is clean: the switch tag counts as a dominating comparison.
func switched(e *VMExit, tbl []byte) byte {
	switch e.Reason {
	case 0:
		return tbl[e.Reason]
	}
	return 0
}
