// Package fixture is the hand-built mini program for the write-effect
// summary unit test (effects_test.go): each function's expected write
// regions and return-alias sets are asserted directly against the
// engine's output.
package fixture

// Table is an init-only lookup table; reads copy scalars out of it.
var Table = map[int]string{1: "a"}

// Counter is a mutable global scalar.
var Counter int

// Buf is a mutable global slice.
var Buf = make([]byte, 16)

// Machine is the receiver shape.
type Machine struct {
	regs [4]uint64
	mem  []byte
}

// SetReg writes only the receiver.
func (m *Machine) SetReg(i int, v uint64) { m.regs[i] = v }

// Fill writes only its second parameter.
func Fill(n int, dst []byte) {
	for i := 0; i < n && i < len(dst); i++ {
		dst[i] = byte(n)
	}
}

// Bump writes the global scalar directly.
func Bump() { Counter++ }

// BufAlias hands out the global buffer.
func BufAlias() []byte { return Buf }

// WriteThroughAlias writes the global through the accessor's result.
func WriteThroughAlias() { BufAlias()[0] = 1 }

// CopyOut copies a scalar out of the global table: scalar copies sever
// aliasing, so this has no effects and no return aliases.
func CopyOut(k int) string { return Table[k] }

// AddrOfCounter returns the address of the global scalar: the one way
// a scalar re-enters the analysis.
func AddrOfCounter() *int { return &Counter }

// WriteViaPointer writes the scalar through the returned pointer.
func WriteViaPointer() { *AddrOfCounter() = 7 }

// Step maps callee effects through the call sites: receiver via
// SetReg, parameter via Fill, global via Bump.
func (m *Machine) Step(scratch []byte) {
	m.SetReg(0, 1)
	Fill(4, scratch)
	Bump()
}
