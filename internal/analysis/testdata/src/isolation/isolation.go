// Package fixture seeds machine-isolation violations for the isolation
// analyzer tests: the step roots are modeled by receiver-type+method
// name (Kernel.Run, VMM.handleExit), exactly how the analyzer matches
// the real ones.
package fixture

// exitCount couples every machine in the process when written on the
// step path.
var exitCount int

// sharedLog is audited shared state; writes to it are accepted
// everywhere.
var sharedLog []string // shared-ok: audited cross-machine debug log

// netPipe is the cross-machine rendezvous; only its one annotated store
// is accepted.
var netPipe [][]byte

// exitTotal is the second machine root's coupling global.
var exitTotal int

// Kernel models the per-machine hypervisor kernel.
type Kernel struct {
	cycles uint64
	buf    []byte
}

// Run is the per-machine step root.
func (k *Kernel) Run() {
	k.cycles++ // receiver write: confined by construction
	k.step()
}

func (k *Kernel) step() {
	exitCount++ // want "write to package-level var exitCount on the isolation.Kernel.Run step path"
	sharedLog = append(sharedLog, "exit")
	k.send([]byte{1})
	local := make([]byte, 4)
	fill(local)
	k.buf = local
}

func (k *Kernel) send(frame []byte) {
	netPipe = append(netPipe, frame) // shared: the simulated NIC wire — the audited cross-machine channel
}

// fill writes only through its parameter: confined to the caller's
// storage.
func fill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// VMM models the per-VM user-level device-model process.
type VMM struct {
	exits uint64
}

func (v *VMM) handleExit(reason int) {
	v.exits++
	exitTotal++ // want "write to package-level var exitTotal on the isolation.VMM.handleExit step path"
}

// Helper is NOT a step root: its global write is globalstate's
// business, not isolation's.
func Helper() {
	exitCount++
}
