// Package fixture seeds capcheck violations: a miniature Kernel with
// hypercall-shaped methods that do and don't follow the §6 discipline.
package fixture

import "errors"

// Selector names a capability slot.
type Selector uint32

// Space is a miniature capability space.
type Space struct{ n int }

// Lookup validates a selector.
func (s *Space) Lookup(sel Selector) (int, error) {
	if int(sel) >= s.n {
		return 0, errors.New("no capability")
	}
	return int(sel), nil
}

// Insert installs a capability.
func (s *Space) Insert(sel Selector, obj int) error {
	if int(sel) < s.n {
		return errors.New("occupied")
	}
	return nil
}

// PD is a protection domain.
type PD struct {
	IsVM bool
	Caps *Space
}

// Kernel is the hypercall surface under test.
type Kernel struct{ hypercalls uint64 }

func (k *Kernel) syscallEnter(caller *PD) error {
	if caller.IsVM {
		return errors.New("VMs cannot perform hypercalls")
	}
	k.hypercalls++
	return nil
}

// GoodCreate follows the discipline: guard first, validation checked.
func (k *Kernel) GoodCreate(caller *PD, sel Selector) (int, error) {
	if err := k.syscallEnter(caller); err != nil {
		return 0, err
	}
	if err := caller.Caps.Insert(sel, 1); err != nil {
		return 0, err
	}
	return 1, nil
}

// BadNoGuard never charges the transition nor rejects VM callers.
func (k *Kernel) BadNoGuard(caller *PD, sel Selector) error { // want "does not begin with the syscallEnter"
	_, err := caller.Caps.Lookup(sel)
	return err
}

// BadGuardNotFirst mutates kernel state before the guard runs.
func (k *Kernel) BadGuardNotFirst(caller *PD, sel Selector) error { // want "does not begin with the syscallEnter"
	k.hypercalls++
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	return nil
}

// BadDiscard guards correctly but drops a validation error, using the
// selector as if it had been validated.
func (k *Kernel) BadDiscard(caller *PD, sel Selector) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	caller.Caps.Insert(sel, 1) // want "discards the error of capability validation Insert"
	return nil
}

// NoErrorResult is outside the rule: without an error result it cannot
// propagate validation failures (the async-semaphore fast-path shape).
func (k *Kernel) NoErrorResult(caller *PD) bool {
	k.hypercalls++
	return true
}

// helperNotExported is unexported and therefore not a hypercall.
func (k *Kernel) helperNotExported(caller *PD) error { return nil }
