// Fixture for the call-graph engine: interface dispatch and method
// values, the two resolution modes chargecheck's reachability and the
// taint analyzer's summary propagation depend on.
package fixture

// Device models the interface-based device dispatch in the VMM.
type Device interface {
	Tick()
}

// PIT and Serial are two implementations the graph must fan out to.
type PIT struct{ n int }

func (p *PIT) Tick() { p.n++ }

type Serial struct{ n int }

func (s *Serial) Tick() { s.n++ }

// dispatch makes an interface call: the graph should resolve it to
// every implementation declared in the program.
func dispatch(d Device) {
	d.Tick()
}

// viaValue binds a method value and calls it later: the graph should
// still record the edge to PIT.Tick.
func viaValue(p *PIT) {
	f := p.Tick
	f()
}

// viaFuncValue passes a function value around; the reference itself is
// an edge (the callback may run anywhere).
func helper() {}

func viaFuncValue(run func()) {
	run()
}

func root() {
	viaFuncValue(helper)
}
