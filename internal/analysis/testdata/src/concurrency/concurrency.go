// Package fixture seeds concurrency violations for the concurrency
// analyzer tests, plus the epoch-barrier escape hatch.
package fixture

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Machine carries latent concurrency in a field type: a mutex in
// per-machine state is still host synchronization.
type Machine struct {
	mu    sync.Mutex // want "sync/atomic use sync.Mutex"
	count int64
}

// BadGo spawns a goroutine outside the gate.
func BadGo() {
	go func() {}() // want "go statement in sim-critical package"
}

// BadChannels exercises every channel operation form.
func BadChannels(ch chan int) {
	ch <- 1               // want "channel send"
	<-ch                  // want "channel receive"
	close(ch)             // want "channel close"
	ch2 := make(chan int) // want "channel construction"
	select {              // want "select statement"
	case <-ch2: // want "channel receive"
	default:
	}
	for range ch { // want "range over channel"
	}
}

// BadSync locks and atomically updates outside the gate.
func BadSync(m *Machine) {
	m.mu.Lock()                  // want "sync/atomic use sync.Lock"
	atomic.AddInt64(&m.count, 1) // want "sync/atomic use atomic.AddInt64"
	m.mu.Unlock()                // want "sync/atomic use sync.Unlock"
}

// BadSched lets the host scheduler into the simulation.
func BadSched() {
	runtime.Gosched()            // want "scheduling call runtime.Gosched"
	time.Sleep(time.Millisecond) // want "scheduling call time.Sleep"
}

// RunEpoch runs one parallel epoch over the machines and joins before
// any state is read back; it is the audited layer.
// epoch-barrier: workers are strictly join-before-read, audited with the parallel engine design.
func RunEpoch(ms []*Machine) {
	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			atomic.AddInt64(&m.count, 1)
		}(m)
	}
	wg.Wait()
}
