// Package fixture seeds chargecheck violations: device-model entry
// points that mutate simulated state with and without cycle accounting.
package fixture

// Cycles is virtual time.
type Cycles uint64

// Clock mirrors hw.Clock: the analyzer recognizes (*Clock).Charge as a
// charge sink by receiver-type and method name.
type Clock struct{ now Cycles }

// Charge advances virtual time by n cycles of work.
func (c *Clock) Charge(n Cycles) { c.now += n }

// Device is a device model with a cycle clock.
type Device struct {
	clk   *Clock
	state uint32
	regs  map[uint32]uint32
}

// GoodWrite mutates device state and charges for the update.
func (d *Device) GoodWrite(reg, val uint32) {
	d.state = val
	d.clk.Charge(350)
}

// GoodWriteTransitive charges through a helper call chain.
func (d *Device) GoodWriteTransitive(reg, val uint32) {
	d.state = val
	d.account()
}

func (d *Device) account() { d.clk.Charge(350) }

// BadWrite mutates device state for free.
func (d *Device) BadWrite(reg, val uint32) { // want "mutates simulated state but no call path reaches"
	d.state = val
}

// BadDelete drops state for free through the delete builtin.
func (d *Device) BadDelete(reg uint32) { // want "mutates simulated state but no call path reaches"
	delete(d.regs, reg)
}

// nocharge: reset is boot-time construction, outside measured windows.
func (d *Device) AnnotatedReset() {
	d.state = 0
}

// ReadOnly observes without mutating; no charge required.
func (d *Device) ReadOnly() uint32 { return d.state }

// internalWrite is unexported: not an entry point, callers account.
func (d *Device) internalWrite(v uint32) { d.state = v }
