// Package fixture seeds chargecheck violations: device-model entry
// points that mutate simulated state with and without cycle accounting,
// plus fused-execution (StepBlock) call sites with and without the
// required batch charge.
package fixture

import "time"

// Cycles is virtual time.
type Cycles uint64

// Clock mirrors hw.Clock: the analyzer recognizes (*Clock).Charge as a
// charge sink by receiver-type and method name.
type Clock struct{ now Cycles }

// Charge advances virtual time by n cycles of work.
func (c *Clock) Charge(n Cycles) { c.now += n }

// Device is a device model with a cycle clock.
type Device struct {
	clk   *Clock
	state uint32
	regs  map[uint32]uint32
}

// GoodWrite mutates device state and charges for the update.
func (d *Device) GoodWrite(reg, val uint32) {
	d.state = val
	d.clk.Charge(350)
}

// GoodWriteTransitive charges through a helper call chain.
func (d *Device) GoodWriteTransitive(reg, val uint32) {
	d.state = val
	d.account()
}

func (d *Device) account() { d.clk.Charge(350) }

// BadWrite mutates device state for free.
func (d *Device) BadWrite(reg, val uint32) { // want "mutates simulated state but no call path reaches"
	d.state = val
}

// BadDelete drops state for free through the delete builtin.
func (d *Device) BadDelete(reg uint32) { // want "mutates simulated state but no call path reaches"
	delete(d.regs, reg)
}

// nocharge: reset is boot-time construction, outside measured windows.
func (d *Device) AnnotatedReset() {
	d.state = 0
}

// ReadOnly observes without mutating; no charge required.
func (d *Device) ReadOnly() uint32 { return d.state }

// internalWrite is unexported: not an entry point, callers account.
func (d *Device) internalWrite(v uint32) { d.state = v }

// Interp models x86.Interp's stepping API. Like the real interpreter,
// its memory-access environment reaches the clock transitively (so the
// entry-point rule is satisfied); what matters for the superblock rule
// is that StepBlock retires a whole fused run and the *call site* must
// batch-charge it before stepping again.
type Interp struct {
	clk *Clock
	ret uint64
}

// Step retires one instruction.
func (i *Interp) Step() error {
	i.ret++
	i.clk.Charge(1)
	return nil
}

// StepBlock retires up to max instructions as one fused run.
func (i *Interp) StepBlock(max uint64) error {
	i.ret += max
	i.clk.Charge(1)
	return nil
}

// goodFusedLoop is the batching idiom: one charge per fused block,
// adjacent to the StepBlock call in the loop body.
func goodFusedLoop(clk *Clock, ip *Interp) {
	for n := 0; n < 4; n++ {
		if err := ip.StepBlock(8); err != nil {
			return
		}
		clk.Charge(8)
	}
}

// goodFusedFallback mirrors the run loops' shape: the fused call and
// the single-step fallback bind in one statement, and the batch charge
// follows as a sibling after intervening bookkeeping.
func goodFusedFallback(clk *Clock, ip *Interp, max uint64) error {
	var err error
	if max > 1 {
		err = ip.StepBlock(max)
	} else {
		err = ip.Step()
	}
	retired := max
	clk.Charge(Cycles(retired))
	return err
}

// badFusedNoCharge steps a fused block and returns without ever
// charging the batch.
func badFusedNoCharge(ip *Interp) error {
	return ip.StepBlock(8) // want "no following batch charge"
}

// badFusedStepsAgain steps again before charging the fused block: the
// eventual charge cannot be attributed to the first block.
func badFusedStepsAgain(clk *Clock, ip *Interp) {
	ip.StepBlock(8) // want "no following batch charge"
	ip.Step()       // a second step before the batch charge
	clk.Charge(16)
}

// WallInterp models a fused executor that consults host time.
type WallInterp struct{ ret uint64 }

// StepBlock leaks a wall-clock read into the fused loop.
func (w *WallInterp) StepBlock(max uint64) error { // want "wall-clock read"
	if time.Now().UnixNano() == 0 {
		return nil
	}
	return nil
}
