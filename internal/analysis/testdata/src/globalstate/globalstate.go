// Package fixture seeds shared-state violations for the globalstate
// analyzer tests: mutable globals, init-only tables, consts in waiting,
// accessor-aliased writes and the shared-ok escape hatch.
package fixture

// MutableCounter is written at runtime by an exported function.
var MutableCounter int // want "package-level var MutableCounter is written after init"

// exitTable is only ever filled during package initialization — both
// directly in init and through a helper reachable only from init — so
// it is an accepted init-only table.
var exitTable = map[int]string{}

func init() {
	exitTable[0] = "ok"
	fillTable()
}

// fillTable is unexported and called only from init, so its write is
// init-only too.
func fillTable() {
	exitTable[1] = "fault"
}

// DeviceID is never written and has basic type: a const in waiting.
var DeviceID = 0x1f2 // want "package-level var DeviceID is never written; declare it const"

// Registry is audited shared state.
var Registry = map[string]int{} // shared-ok: cross-machine service registry, audited with the epoch design

// Bump writes both; only the unannotated one is a finding.
func Bump() {
	MutableCounter++
	Registry["bump"] = 1
}

// names leaks its backing store through an accessor; the aliased write
// in Rename must still be attributed to it.
var names = []string{"timer", "serial"} // want "package-level var names is written after init"

// Names hands out the live backing slice.
func Names() []string { return names }

// Rename writes the global through the accessor's result.
func Rename(i int, s string) {
	Names()[i] = s
}
