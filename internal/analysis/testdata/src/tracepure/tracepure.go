// Package fixture seeds tracepure violations: trace-layer code that
// perturbs the simulation, and emission call sites whose arguments do
// work. The analyzer matches the trace layer by receiver-type name
// (Tracer, Ring, Histogram, CounterSet, ..., DecodeCache, Superblock),
// so this package models it the same way the chargecheck fixture
// models Clock.
package fixture

import "time"

// Cycles is virtual time.
type Cycles uint64

// Clock mirrors hw.Clock.
type Clock struct{ now Cycles }

// Charge advances virtual time by n cycles of work.
func (c *Clock) Charge(n Cycles) { c.now += n }

// Now reads virtual time (pure; the emission idiom).
func (c *Clock) Now() Cycles { return c.now }

// Mem mirrors the simulated physical memory.
type Mem struct{ word uint32 }

// Write32 is a platform mutator by name.
func (m *Mem) Write32(off uint32, v uint32) { m.word = v }

// Tracer mirrors trace.Tracer.
type Tracer struct {
	events []uint64
	clk    *Clock
	mem    *Mem
}

// Emit records one event without touching the simulation.
func (t *Tracer) Emit(now Cycles, a uint64) {
	t.events = append(t.events, uint64(now)+a)
}

// BadCharge perturbs virtual time from inside the trace layer.
func (t *Tracer) BadCharge(n Cycles) { // want "charges simulated cycles"
	t.clk.Charge(n)
	t.events = append(t.events, uint64(n))
}

// BadChargeTransitive hides the charge behind a helper.
func (t *Tracer) BadChargeTransitive() { // want "charges simulated cycles"
	t.account()
}

func (t *Tracer) account() { // want "charges simulated cycles"
	t.clk.Charge(1)
}

// BadMutate writes guest-visible state while recording.
func (t *Tracer) BadMutate() { // want "mutates guest-visible platform state"
	t.mem.Write32(0, 1)
}

// BadWallClock timestamps events with host time instead of the
// virtual clock.
func (t *Tracer) BadWallClock() { // want "reads the wall clock"
	t.events = append(t.events, uint64(time.Now().UnixNano()))
}

// Ring is trace-layer by type name too.
type Ring struct{ n int }

// Push is pure bookkeeping: fine.
func (r *Ring) Push(v uint64) { r.n++ }

// Device is an instrumented component (not trace-layer itself).
type Device struct {
	tr  *Tracer
	clk *Clock
}

// GoodEmit hoists the timestamp read before the emission — the idiom
// every instrumented call site uses.
func (d *Device) GoodEmit() {
	now := d.clk.Now()
	d.tr.Emit(now, 1)
}

// GoodEmitInline reads the virtual clock inside the argument list,
// which is pure and allowed.
func (d *Device) GoodEmitInline() {
	d.tr.Emit(d.clk.Now(), 1)
}

// BadEmitCharging does chargeable work inside the emission arguments:
// the traced run diverges from the untraced one.
func (d *Device) BadEmitCharging() {
	d.tr.Emit(d.step(), 1) // want "charges simulated cycles"
}

// step models a helper that advances the simulation.
func (d *Device) step() Cycles {
	d.clk.Charge(5)
	return d.clk.Now()
}

// BadEmitWallClock stamps an event with host time at the call site.
func (d *Device) BadEmitWallClock() {
	d.tr.Emit(0, uint64(time.Now().UnixNano())) // want "reads the wall clock"
}

// Profiler mirrors prof.Profiler: trace-layer by type name.
type Profiler struct {
	clk    *Clock
	counts map[uint32]uint64
	keys   []uint32
}

// Tick records a sample without touching the simulation: fine.
func (p *Profiler) Tick(now Cycles) { p.counts[uint32(now)]++ }

// BadTickCharge advances virtual time while sampling.
func (p *Profiler) BadTickCharge() { // want "charges simulated cycles"
	p.clk.Charge(1)
}

// BadEncode serializes by ranging over a map: two identical runs
// would emit differently ordered (non-byte-identical) profiles.
func (p *Profiler) BadEncode() []uint64 {
	var out []uint64
	for k, v := range p.counts { // want "ranges over a map"
		out = append(out, uint64(k)+v)
	}
	return out
}

// GoodEncode walks a sorted slice and uses the map only for lookup.
func (p *Profiler) GoodEncode() []uint64 {
	var out []uint64
	for _, k := range p.keys {
		out = append(out, p.counts[k])
	}
	return out
}

// Buf mirrors prof.Buf.
type Buf struct{ n int }

// BadDrainWallClock reads host time from the sample buffer.
func (b *Buf) BadDrainWallClock() int64 { // want "reads the wall clock"
	return time.Now().UnixNano()
}

// Metric mirrors stat.Metric: the resource-accounting layer rides the
// same zero-perturbation contract as the tracer and profiler.
type Metric struct {
	total uint64
	cells []uint64
}

// Registry mirrors stat.Registry.
type Registry struct {
	clk     *Clock
	mem     *Mem
	index   map[string]*Metric
	ordered []*Metric
}

// Counter mirrors the stat.Counter handle.
type Counter struct{ m *Metric }

// Gauge mirrors the stat.Gauge handle.
type Gauge struct{ m *Metric }

// Add records into a counter without touching the simulation: fine.
func (c Counter) Add(now Cycles, n uint64) {
	if c.m == nil {
		return
	}
	c.m.total += n
}

// BadSet charges virtual time from inside a gauge update.
func (g Gauge) BadSet(clk *Clock, v uint64) { // want "charges simulated cycles"
	clk.Charge(1)
	g.m.total = v
}

// BadRegister mutates guest-visible state while registering a metric.
func (r *Registry) BadRegister(name string) *Metric { // want "mutates guest-visible platform state"
	r.mem.Write32(0, 1)
	m := &Metric{}
	r.index[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// BadSnapshot serializes by ranging over the lookup map instead of the
// registration-ordered slice.
func (r *Registry) BadSnapshot() []uint64 {
	var out []uint64
	for _, m := range r.index { // want "ranges over a map"
		out = append(out, m.total)
	}
	return out
}

// GoodSnapshot walks the ordered slice; the map is lookup-only.
func (r *Registry) GoodSnapshot() []uint64 {
	var out []uint64
	for _, m := range r.ordered {
		out = append(out, m.total)
	}
	return out
}

// BadSnapshotWallClock stamps the snapshot with host time.
func (r *Registry) BadSnapshotWallClock() int64 { // want "reads the wall clock"
	return time.Now().UnixNano()
}

// Server is an instrumented component holding metric handles.
type Server struct {
	reqs Counter
	clk  *Clock
}

// GoodCount is the accounting idiom: read virtual time, record.
func (s *Server) GoodCount() {
	s.reqs.Add(s.clk.Now(), 1)
}

// BadCountCharging does chargeable work inside the recording call's
// arguments.
func (s *Server) BadCountCharging(d *Device) {
	s.reqs.Add(d.step(), 1) // want "charges simulated cycles"
}

// DecodeCache mirrors x86.DecodeCache: the decoded-instruction cache
// and its superblock layer are host-side acceleration state riding the
// same zero-perturbation contract as the trace layer — a cache fill or
// invalidation must be invisible to the simulation.
type DecodeCache struct {
	clk   *Clock
	mem   *Mem
	pages map[uint64]int
	order []uint64
}

// Lookup is pure host-side bookkeeping (maps as lookup index): fine.
func (c *DecodeCache) Lookup(page uint64) int { return c.pages[page] }

// BadFill charges simulated cycles for a host-side cache fill.
func (c *DecodeCache) BadFill(page uint64) { // want "charges simulated cycles"
	c.clk.Charge(1)
	c.pages[page] = 1
}

// BadSweep serializes cache contents by ranging over the page map.
func (c *DecodeCache) BadSweep() []uint64 {
	var out []uint64
	for p := range c.pages { // want "ranges over a map"
		out = append(out, p)
	}
	return out
}

// GoodSweep walks the insertion-ordered slice; the map is lookup-only.
func (c *DecodeCache) GoodSweep() []uint64 {
	var out []uint64
	for _, p := range c.order {
		out = append(out, uint64(c.pages[p]))
	}
	return out
}

// Superblock mirrors x86.Superblock.
type Superblock struct{ insts []uint64 }

// BadBuild mutates guest-visible state while chaining a block.
func (s *Superblock) BadBuild(m *Mem) { // want "mutates guest-visible platform state"
	m.Write32(0, 1)
	s.insts = append(s.insts, 1)
}

// GoodVerify re-proves a cached block against live bytes without
// touching the simulation: fine.
func (s *Superblock) GoodVerify(live []uint64) bool {
	for i, v := range s.insts {
		if i >= len(live) || live[i] != v {
			return false
		}
	}
	return true
}

// Recorder mirrors span.Recorder: the request-span tracer rides the
// same zero-perturbation contract — opening, transitioning, or closing
// a span must never charge, mutate guest state, or read the wall clock,
// and its encoding must never range over a map.
type Recorder struct {
	clk    *Clock
	mem    *Mem
	next   uint64
	active map[uint64]int
	order  []uint64
}

// Open assigns the next span ID and records the open: pure host-side
// bookkeeping, fine.
func (r *Recorder) Open(now Cycles) uint64 {
	r.next++
	r.active[r.next] = int(now)
	r.order = append(r.order, r.next)
	return r.next
}

// BadOpenCharge charges simulated cycles for recording a span open.
func (r *Recorder) BadOpenCharge(now Cycles) uint64 { // want "charges simulated cycles"
	r.clk.Charge(1)
	r.next++
	return r.next
}

// BadCloseMutate writes guest-visible state while closing a span.
func (r *Recorder) BadCloseMutate(id uint64) { // want "mutates guest-visible platform state"
	r.mem.Write32(0, uint32(id))
}

// BadOpenWallClock stamps a span with host time instead of virtual
// time.
func (r *Recorder) BadOpenWallClock() int64 { // want "reads the wall clock"
	return time.Now().UnixNano()
}

// BadEncodeSpans serializes by ranging over the active-span map: two
// identical runs would emit non-byte-identical span files.
func (r *Recorder) BadEncodeSpans() []uint64 {
	var out []uint64
	for id := range r.active { // want "ranges over a map"
		out = append(out, id)
	}
	return out
}

// GoodEncodeSpans walks the ID-ordered slice; the map is lookup-only.
func (r *Recorder) GoodEncodeSpans() []uint64 {
	var out []uint64
	for _, id := range r.order {
		out = append(out, uint64(r.active[id]))
	}
	return out
}

// Port is an instrumented IPC boundary (not trace-layer itself).
type Port struct {
	rec *Recorder
	clk *Clock
}

// GoodPropagate is the propagation idiom: read virtual time, record the
// span event, no charge from the recording itself.
func (p *Port) GoodPropagate() uint64 {
	return p.rec.Open(p.clk.Now())
}

// BadPropagateCharging does chargeable work inside the span call's
// arguments.
func (p *Port) BadPropagateCharging(d *Device) {
	p.rec.Open(d.step()) // want "charges simulated cycles"
}
