// Package fixture seeds nopanic violations: panics with and without an
// invariant justification.
package fixture

import "errors"

// ErrBounds is the error-return alternative the analyzer points at.
var ErrBounds = errors.New("out of bounds")

// BadPanic tears down the whole simulated machine on bad input.
func BadPanic(n int) {
	if n < 0 {
		panic("negative") // want "return an error; the kernel isolates the failing domain"
	}
}

// GoodAnnotated asserts a simulator-internal invariant, with the
// justification directly above the call.
func GoodAnnotated(idx, size int) {
	if idx >= size {
		// invariant: idx comes from the simulator's own allocator, never
		// from guest input; overflow here means the allocator is broken.
		panic("allocator handed out an out-of-range index")
	}
}

// GoodTrailing justifies on the same line.
func GoodTrailing(ok bool) {
	if !ok {
		panic("unreachable") // invariant: guarded by the type system above
	}
}

// GoodErrorReturn is the preferred shape: the kernel isolates the
// failing domain instead of dying.
func GoodErrorReturn(n, size int) error {
	if n >= size {
		return ErrBounds
	}
	return nil
}
