package analysis

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Isolation verifies the static precondition for running VMs on
// separate goroutines between epoch barriers: every write performed on
// a machine's simulation step path must land in state reachable from
// that machine's own object graph. The step roots are the per-machine
// entry points (the kernel run loop, the bare-metal run loop, the VMM
// exit dispatcher); from each root the write-effect summaries
// (effects.go) give the transitive set of regions the path can store
// to. Receiver-owned and parameter-owned writes are confined by
// construction — the root's receiver IS the machine — so the findings
// are exactly the package-global writes, the one channel through which
// two machines in one process can observe each other.
//
// Escape hatches, both audit records with mandatory rationale:
//
//   - a var annotated `// shared-ok: <why>` is accepted shared state
//     (globalstate enforces the same annotation on its declaration);
//   - a store line annotated `// shared: <why>` is the explicit
//     cross-machine rendezvous (the simulated NIC/disk server channel)
//     and is accepted at that line only.
var Isolation = &Analyzer{
	Name: "isolation",
	Doc:  "the per-machine step path must write only machine-reachable state (package-global writes need // shared: or // shared-ok:)",
	run:  runIsolation,
}

// isolationRoots names the per-machine simulation entry points by
// receiver type and method, like capcheck's Kernel matching, so fixture
// packages can model them. Every function reachable from one of these
// is "on the step path" of some machine.
var isolationRoots = map[string]bool{
	"Kernel.Run":     true, // microhypervisor scheduling loop
	"Kernel.RunAll":  true, // multi-CPU variant
	"BareMetal.Run":  true, // native (unvirtualized) run loop
	"VMM.handleExit": true, // VMM exit dispatch (invoked via IPC portal)
}

func runIsolation(pass *Pass) {
	eff := pass.Prog.Effects()
	cg := pass.Prog.CallGraph()
	annots := newAnnotLines(pass.Prog.Fset)
	targets := make(map[*Package]bool, len(pass.Targets))
	for _, pkg := range pass.Targets {
		targets[pkg] = true
	}

	type finding struct {
		pos  token.Pos
		v    *types.Var
		path []string
		root string
	}
	seen := make(map[string]bool) // (var, pos) dedupe across roots
	var findings []finding

	for _, node := range cg.Ordered {
		if !targets[node.Pkg] || !isolationRoots[rootKey(node.Fn)] {
			continue
		}
		s := eff.Summary(node.Fn)
		if s == nil {
			continue
		}
		for _, r := range s.WriteRegions() {
			if r.Kind != RegionGlobal {
				continue
			}
			w := s.Writes[r]
			key := globalVarKey(r.Global) + "@" + pass.Prog.Fset.Position(w.Pos).String()
			if seen[key] {
				continue
			}
			seen[key] = true
			// The write site's own package decides the annotations: the
			// var's declaring package for shared-ok, the storing file's
			// line for shared.
			declPkg := packageOf(pass.Prog, r.Global)
			if declPkg != nil && varAnnotated(declPkg, r.Global, markSharedOK) {
				continue
			}
			sitePkg := packageAt(pass.Prog, w.Pos)
			if sitePkg != nil && annots.covers(sitePkg, w.Pos, markSharedWrite) {
				continue
			}
			findings = append(findings, finding{
				pos: w.Pos, v: r.Global, path: w.Path, root: FuncDisplayName(node.Fn),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a := pass.Prog.Fset.Position(findings[i].pos)
		b := pass.Prog.Fset.Position(findings[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, f := range findings {
		// Path is innermost-first; render root -> ... -> store.
		chain := append([]string{}, f.path...)
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		pass.Reportf(f.pos, "write to package-level var %s on the %s step path (via %s) escapes the machine's object graph; two machines in one process would couple here — move the state into the machine or annotate // shared: <why>", f.v.Name(), f.root, strings.Join(chain, " -> "))
	}
}

// rootKey renders fn as RecvType.Name for isolationRoots matching.
func rootKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fn.Name()
	}
	return named.Obj().Name() + "." + fn.Name()
}

// packageOf finds the loaded Package declaring obj.
func packageOf(prog *Program, obj types.Object) *Package {
	if obj.Pkg() == nil {
		return nil
	}
	for _, pkg := range prog.Pkgs {
		if pkg.Types == obj.Pkg() {
			return pkg
		}
	}
	return nil
}

// packageAt finds the loaded Package whose files contain pos.
func packageAt(prog *Program, pos token.Pos) *Package {
	for _, pkg := range prog.Pkgs {
		if fileOf(pkg, pos) != nil {
			return pkg
		}
	}
	return nil
}
