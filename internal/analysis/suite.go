package analysis

import (
	"fmt"
	"strings"
)

// SimCriticalPackages are the packages whose execution produces the
// simulation's observable results (cycle counts, exit traces, benchmark
// figures). Determinism and panic-freedom are enforced here; packages
// outside this set (benchmark drivers, CLI tools, the guest assembler
// toolchain's build helpers) may use wall-clock time for reporting.
var SimCriticalPackages = []string{
	ModulePath + "/internal/hypervisor",
	ModulePath + "/internal/hw",
	ModulePath + "/internal/vmm",
	ModulePath + "/internal/x86",
	ModulePath + "/internal/cap",
	ModulePath + "/internal/trace",
	ModulePath + "/internal/prof",
}

// EntryPointPackages hold the kernel and device-model entry points that
// must charge cycles for the work they model.
var EntryPointPackages = []string{
	ModulePath + "/internal/hypervisor",
	ModulePath + "/internal/vmm",
}

// SuiteEntry pairs an analyzer with the import paths it applies to on
// repository runs. A nil Paths means every package in the program.
type SuiteEntry struct {
	Analyzer *Analyzer
	Paths    []string
}

// DefaultSuite is the invariant gate cmd/nova-vet and the repo-wide
// test both run. Order is stable and alphabetical by analyzer name.
func DefaultSuite() []SuiteEntry {
	return []SuiteEntry{
		{Capcheck, nil}, // self-limiting: only fires on hypercall-shaped Kernel methods
		{Chargecheck, EntryPointPackages},
		{Concurrency, SimCriticalPackages},
		{Determinism, SimCriticalPackages},
		{Exhaustive, SimCriticalPackages},
		{Globalstate, SimCriticalPackages},
		{Isolation, SimCriticalPackages},
		{Nopanic, SimCriticalPackages},
		{Taint, SimCriticalPackages},
		{Tracepure, nil}, // self-limiting: only fires on trace-shaped code
	}
}

// RunSuite loads the repository rooted at root and runs every suite
// entry, returning the combined diagnostics (unfiltered by baseline).
func RunSuite(root string) ([]Diagnostic, error) {
	prog, err := LoadRepo(root)
	if err != nil {
		return nil, err
	}
	return RunSuiteOn(prog)
}

// RunSuiteOn runs the default suite over an already-loaded program.
func RunSuiteOn(prog *Program) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, e := range DefaultSuite() {
		targets, err := selectTargets(prog, e.Paths)
		if err != nil {
			return nil, err
		}
		all = append(all, e.Analyzer.Run(prog, targets)...)
	}
	return all, nil
}

func selectTargets(prog *Program, paths []string) ([]*Package, error) {
	if paths == nil {
		return prog.Pkgs, nil
	}
	var targets []*Package
	var missing []string
	for _, p := range paths {
		if pkg := prog.Package(p); pkg != nil {
			targets = append(targets, pkg)
		} else {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		// A policy package disappearing silently would disable the
		// check; fail loudly so renames update the suite.
		return nil, fmt.Errorf("analysis: suite packages not found in program: %s", strings.Join(missing, ", "))
	}
	return targets, nil
}
