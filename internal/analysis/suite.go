package analysis

import (
	"fmt"
	"strings"

	"nova/internal/walltime"
)

// SimCriticalPackages are the packages whose execution produces the
// simulation's observable results (cycle counts, exit traces, benchmark
// figures). Determinism and panic-freedom are enforced here; packages
// outside this set (benchmark drivers, CLI tools, the guest assembler
// toolchain's build helpers) may use wall-clock time for reporting.
var SimCriticalPackages = []string{
	ModulePath + "/internal/hypervisor",
	ModulePath + "/internal/hw",
	ModulePath + "/internal/vmm",
	ModulePath + "/internal/x86",
	ModulePath + "/internal/cap",
	ModulePath + "/internal/trace",
	ModulePath + "/internal/prof",
	ModulePath + "/internal/stat",
}

// EntryPointPackages hold the kernel and device-model entry points that
// must charge cycles for the work they model.
var EntryPointPackages = []string{
	ModulePath + "/internal/hypervisor",
	ModulePath + "/internal/vmm",
}

// SuiteEntry pairs an analyzer with the import paths it applies to on
// repository runs. A nil Paths means every package in the program.
type SuiteEntry struct {
	Analyzer *Analyzer
	Paths    []string
}

// DefaultSuite is the invariant gate cmd/nova-vet and the repo-wide
// test both run. Order is stable and alphabetical by analyzer name.
func DefaultSuite() []SuiteEntry {
	return []SuiteEntry{
		{Capcheck, nil}, // self-limiting: only fires on hypercall-shaped Kernel methods
		{Capflow, EntryPointPackages},
		{Chargecheck, EntryPointPackages},
		{Concurrency, SimCriticalPackages},
		{Determinism, SimCriticalPackages},
		{Exhaustive, SimCriticalPackages},
		{Globalstate, SimCriticalPackages},
		{Isolation, SimCriticalPackages},
		{Nopanic, SimCriticalPackages},
		{Taint, SimCriticalPackages},
		{Tracepure, nil}, // self-limiting: only fires on trace-shaped code
	}
}

// SelectEntries filters the default suite down to the named analyzers,
// preserving suite order. An unknown name is an error (a typo must not
// silently skip a gate); names are the Analyzer.Name values -list
// prints.
func SelectEntries(names []string) ([]SuiteEntry, error) {
	suite := DefaultSuite()
	byName := make(map[string]SuiteEntry, len(suite))
	for _, e := range suite {
		byName[e.Analyzer.Name] = e
	}
	want := make(map[string]bool)
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := byName[n]; !ok {
			known := make([]string, 0, len(suite))
			for _, e := range suite {
				known = append(known, e.Analyzer.Name)
			}
			return nil, fmt.Errorf("analysis: unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
		want[n] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("analysis: no analyzers selected")
	}
	var out []SuiteEntry
	for _, e := range suite {
		if want[e.Analyzer.Name] {
			out = append(out, e)
		}
	}
	return out, nil
}

// Timing is one analyzer's share of a suite run, for -json output and
// budget tracking.
type Timing struct {
	Analyzer string  `json:"analyzer"`
	Seconds  float64 `json:"seconds"`
	Findings int     `json:"findings"`
}

// RunSuite loads the repository rooted at root and runs every suite
// entry, returning the combined diagnostics (unfiltered by baseline).
func RunSuite(root string) ([]Diagnostic, error) {
	diags, _, err := RunEntries(root, DefaultSuite())
	return diags, err
}

// RunEntries loads the repository and runs the given suite entries,
// timing each analyzer on the host wall clock.
func RunEntries(root string, entries []SuiteEntry) ([]Diagnostic, []Timing, error) {
	prog, err := LoadRepo(root)
	if err != nil {
		return nil, nil, err
	}
	return RunEntriesOn(prog, entries)
}

// RunSuiteOn runs the default suite over an already-loaded program.
func RunSuiteOn(prog *Program) ([]Diagnostic, error) {
	diags, _, err := RunEntriesOn(prog, DefaultSuite())
	return diags, err
}

// RunEntriesOn runs the given suite entries over an already-loaded
// program, timing each analyzer.
func RunEntriesOn(prog *Program, entries []SuiteEntry) ([]Diagnostic, []Timing, error) {
	var all []Diagnostic
	timings := make([]Timing, 0, len(entries))
	for _, e := range entries {
		targets, err := selectTargets(prog, e.Paths)
		if err != nil {
			return nil, nil, err
		}
		sw := walltime.Start()
		diags := e.Analyzer.Run(prog, targets)
		timings = append(timings, Timing{Analyzer: e.Analyzer.Name, Seconds: sw.Seconds(), Findings: len(diags)})
		all = append(all, diags...)
	}
	return all, timings, nil
}

func selectTargets(prog *Program, paths []string) ([]*Package, error) {
	if paths == nil {
		return prog.Pkgs, nil
	}
	var targets []*Package
	var missing []string
	for _, p := range paths {
		if pkg := prog.Package(p); pkg != nil {
			targets = append(targets, pkg)
		} else {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		// A policy package disappearing silently would disable the
		// check; fail loudly so renames update the suite.
		return nil, fmt.Errorf("analysis: suite packages not found in program: %s", strings.Join(missing, ", "))
	}
	return targets, nil
}
