// Package analysis is nova-vet: a stdlib-only static-analysis framework
// enforcing the invariants NOVA's security and reproducibility argument
// rests on but the Go compiler cannot see.
//
// The paper's trusted computing base argument (§2–3) works only if every
// hypercall validates capabilities before touching kernel objects, and
// this reproduction's evaluation is meaningful only if the simulation is
// deterministic and cycle-accounted (same inputs → identical cycle
// counts). Those are whole-program properties; they rot silently under
// refactoring. Each Analyzer in this package mechanically checks one of
// them over the type-checked source, and a repo-wide test plus the
// cmd/nova-vet driver keep the checks green forever.
//
// The framework deliberately uses only go/parser, go/ast and go/types —
// no golang.org/x/tools — so go.mod stays dependency-free. Loading is
// done from source (load.go); diagnostics are file:line messages; a
// checked-in baseline (baseline.go) suppresses findings that predate an
// analyzer so the gate starts green and only ratchets down.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding: an invariant violation at a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
}

// Pass is one analyzer run over a set of target packages within a
// loaded program. Targets are the packages the analyzer reports on; the
// rest of the program is available for whole-program facts (chargecheck
// resolves calls into packages outside its target set).
type Pass struct {
	Prog    *Program
	Targets []*Package

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string // short identifier used in baselines and output
	Doc  string // one-line description
	run  func(*Pass)
}

// Run executes the analyzer over the target packages and returns its
// diagnostics sorted by position.
func (a *Analyzer) Run(prog *Program, targets []*Package) []Diagnostic {
	pass := &Pass{Prog: prog, Targets: targets, analyzer: a}
	a.run(pass)
	sortDiags(pass.diags)
	return pass.diags
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
}

// inspect walks every file of every target package.
func (p *Pass) inspect(fn func(pkg *Package, file *ast.File, n ast.Node) bool) {
	for _, pkg := range p.Targets {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool { return fn(pkg, f, n) })
		}
	}
}
