package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Taint is the guest-taint interprocedural dataflow analyzer: the check
// that makes NOVA's trust boundary (§1, §4 of the paper) mechanical.
// The hypervisor and VMM must treat every guest-visible value as
// hostile; in this reproduction that boundary is crossed wherever a
// VM-exit message, a decoded guest instruction, or a byte fetched from
// guest memory flows into host-side indexing, addressing or length
// arithmetic.
//
// The taint lattice:
//
//   - sources: field reads off the guest-state structs (UTCB, VMExit,
//     CPUState — matched by type name so fixtures can model them), and
//     results of the guest-memory readers (GuestRead, guestRead32,
//     ReadPhys32, FetchByte);
//   - sinks: slice/array indices, slice bounds, make() lengths, shift
//     amounts, and hw.Memory physical addresses (Read*/Write*
//     first argument);
//   - sanitizers: a bounds-check comparison or switch on (a root of)
//     the value anywhere in the sink's function, a constant mask
//     (`v & 0x7f`), a modulus, a clamping min(), or an explicit
//     `// sanitized: <why>` comment on the sink line or the line above.
//
// Propagation is interprocedural over the shared call graph
// (callgraph.go): per-function summaries record which parameters reach
// sinks, callee arguments, struct fields and return values; a global
// fixpoint then pushes taint from the sources through call edges
// (including interface calls and method values) and through struct
// fields (field-based, receiver-insensitive — a guest value stored in
// VAHCI.clb taints every later read of .clb). Diagnostics print the
// full interprocedural path in function-name form, which keeps baseline
// entries stable across unrelated line shifts.
var Taint = &Analyzer{
	Name: "taint",
	Doc:  "guest-controlled values must not reach indices, lengths, shifts or host memory addresses unchecked",
	run:  runTaint,
}

// sourceStructTypes are the type names whose field reads yield
// guest-controlled data. Matched by name (like chargecheck's Kernel) so
// fixture packages can model them.
var sourceStructTypes = map[string]bool{
	"UTCB": true, "VMExit": true, "CPUState": true,
}

// guestReadFuncs return bytes/words read from guest memory or the
// guest instruction stream; their results are intrinsically tainted.
var guestReadFuncs = map[string]bool{
	"GuestRead": true, "guestRead32": true, "ReadPhys32": true,
	"FetchByte": true,
}

// hwMemAccessFuncs are the methods on hw.Memory (matched by receiver
// type name "Memory") whose first argument is a host-physical address —
// an address sink: guest data steering host memory access is exactly
// the DMA-style attack §4.2 rules out.
var hwMemAccessFuncs = map[string]bool{
	"Read8": true, "Read16": true, "Read32": true, "Read64": true,
	"Write8": true, "Write16": true, "Write32": true, "Write64": true,
	"ReadBytes": true, "WriteBytes": true,
}

// --- taint tokens -----------------------------------------------------

const (
	tokSrc   = byte('S') // intrinsic guest source
	tokParam = byte('P') // parameter of the analyzed function (-1 = receiver)
	tokField = byte('F') // struct field (program-global)
)

// tokKey identifies one way a value can be tainted. For sources the
// description participates in identity so distinct sources dedupe
// naturally.
type tokKey struct {
	kind  byte
	param int
	field *types.Var
	src   string
}

// origin records where a token was introduced, for path rendering.
type origin struct {
	pos  token.Pos
	desc string
}

type tokSet map[tokKey]origin

func (ts tokSet) join(other tokSet) bool {
	changed := false
	for k, o := range other {
		if _, ok := ts[k]; !ok {
			ts[k] = o
			changed = true
		}
	}
	return changed
}

// sortedKeys orders tokens deterministically: sources first (direct
// evidence), then parameters, then fields.
func (ts tokSet) sortedKeys() []tokKey {
	keys := make([]tokKey, 0, len(ts))
	for k := range ts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind == tokSrc || (a.kind == tokParam && b.kind == tokField)
		}
		if a.param != b.param {
			return a.param < b.param
		}
		if a.src != b.src {
			return a.src < b.src
		}
		if a.field != nil && b.field != nil && a.field != b.field {
			return a.field.Pkg().Path()+a.field.Name() < b.field.Pkg().Path()+b.field.Name()
		}
		return false
	})
	return keys
}

// --- per-function summaries -------------------------------------------

type sinkRec struct {
	pos  token.Pos
	what string // "slice index", "shift amount", ...
	toks tokSet
}

type argFlow struct {
	callee *types.Func
	param  int // -1 = receiver
	toks   tokSet
	pos    token.Pos
}

type fieldFlow struct {
	field *types.Var
	toks  tokSet
	pos   token.Pos
}

type fnSummary struct {
	node   *FuncNode
	params []*types.Var // in signature order; receiver handled separately
	recv   *types.Var
	env    map[types.Object]tokSet
	// rets tracks return taint per result position, so a tuple like
	// (off, seg) where only off is guest-derived does not smear the
	// second result.
	rets    []tokSet
	sinks   []sinkRec
	args    []argFlow
	fields  []fieldFlow
	checked map[string]bool // expr strings bounds-checked in this function
}

// retsSignature is the part of a summary other functions' analyses
// depend on; the whole-program pass iterates until it stabilizes.
func (s *fnSummary) retsSignature() string {
	var parts []string
	for i, set := range s.rets {
		for _, k := range set.sortedKeys() {
			parts = append(parts, fmt.Sprintf("%d:%c%d%s%p", i, k.kind, k.param, k.src, k.field))
		}
	}
	return strings.Join(parts, "|")
}

// --- the analysis ------------------------------------------------------

type taintAnalysis struct {
	pass      *Pass
	cg        *CallGraph
	summaries map[*types.Func]*fnSummary
	sanitized map[*ast.File]map[int]bool // lines covered by // sanitized:
	facts     map[tokKey]*taintFact      // param/field facts, keyed with fn below
	factFns   map[factKey]*taintFact
}

type factKey struct {
	fn    *types.Func // nil for field facts
	param int
	field *types.Var
}

type taintFact struct {
	path []string // human-readable interprocedural steps
}

const maxSummaryRounds = 10

func runTaint(pass *Pass) {
	t := &taintAnalysis{
		pass:      pass,
		cg:        pass.Prog.CallGraph(),
		summaries: make(map[*types.Func]*fnSummary),
		sanitized: make(map[*ast.File]map[int]bool),
		factFns:   make(map[factKey]*taintFact),
	}
	// Phase 1: per-function summaries, iterated until return-taint
	// signatures stabilize (callees' summaries feed callers' call-result
	// evaluation).
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, node := range t.cg.Ordered {
			old := ""
			if prev, ok := t.summaries[node.Fn]; ok {
				old = prev.retsSignature()
			}
			s := t.analyzeFunc(node)
			t.summaries[node.Fn] = s
			if s.retsSignature() != old {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: global fixpoint pushing taint facts through call edges
	// and struct fields.
	t.solveFacts()
	// Phase 3: report unsanitized sinks reached by active taint in the
	// target packages.
	t.report()
}

// --- phase 1: intra-function flow --------------------------------------

func (t *taintAnalysis) analyzeFunc(node *FuncNode) *fnSummary {
	s := &fnSummary{
		node:    node,
		env:     make(map[types.Object]tokSet),
		checked: make(map[string]bool),
	}
	if sig, ok := node.Fn.Type().(*types.Signature); ok {
		s.rets = make([]tokSet, sig.Results().Len())
		for i := range s.rets {
			s.rets[i] = make(tokSet)
		}
	}
	info := node.Pkg.Info
	fd := node.Decl

	// Seed parameters (and receiver) with their symbolic tokens.
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if v, ok := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
			s.recv = v
			s.env[v] = tokSet{tokKey{kind: tokParam, param: -1}: {pos: fd.Pos()}}
		}
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				s.params = append(s.params, v)
				s.env[v] = tokSet{tokKey{kind: tokParam, param: idx}: {pos: name.Pos()}}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}

	t.collectChecked(s)

	// Local dataflow fixpoint over assignments.
	for iter := 0; iter < 30; iter++ {
		if !t.propagateOnce(s) {
			break
		}
	}
	// Final pass: record sinks, call-argument flows, field writes and
	// return taint against the stabilized environment.
	t.collectFlows(s)
	return s
}

// collectChecked gathers the canonical strings of expressions that
// appear under a comparison or as a switch tag — the bounds-check
// sanitizer set.
func (t *taintAnalysis) collectChecked(s *fnSummary) {
	info := s.node.Pkg.Info
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				addRootStrings(info, s.checked, n.X)
				addRootStrings(info, s.checked, n.Y)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				addRootStrings(info, s.checked, n.Tag)
			}
		}
		return true
	})
}

// addRootStrings records every maximal ident/selector chain inside e.
// Conversions are transparent (`int(x) < n` checks x), but other calls
// are not: `len(w) < 5` bounds w's length, not its element values, so
// recursing into call arguments would sanitize far too much.
func addRootStrings(info *types.Info, set map[string]bool, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		set[e.Name] = true
	case *ast.SelectorExpr:
		if s := chainString(e); s != "" {
			set[s] = true
			return
		}
		addRootStrings(info, set, e.X)
	case *ast.ParenExpr:
		addRootStrings(info, set, e.X)
	case *ast.StarExpr:
		addRootStrings(info, set, e.X)
	case *ast.UnaryExpr:
		addRootStrings(info, set, e.X)
	case *ast.BinaryExpr:
		addRootStrings(info, set, e.X)
		addRootStrings(info, set, e.Y)
	case *ast.IndexExpr:
		addRootStrings(info, set, e.X)
		addRootStrings(info, set, e.Index)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			for _, a := range e.Args {
				addRootStrings(info, set, a)
			}
		}
	}
}

// chainString renders a pure ident/selector chain ("a.b.c"), or "".
func chainString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := chainString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return chainString(e.X)
	}
	return ""
}

// propagateOnce runs one pass of assignment propagation; reports
// whether the environment changed.
func (t *taintAnalysis) propagateOnce(s *fnSummary) bool {
	changed := false
	info := s.node.Pkg.Info
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			toks := t.assignRHS(s, n)
			for i, lhs := range n.Lhs {
				set := toks[i]
				if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
					// Compound assignment keeps existing taint too.
					set = set.clone()
					set.join(t.eval(s, lhs))
				}
				if t.joinLHS(s, lhs, set) {
					changed = true
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for i, name := range vs.Names {
					var set tokSet
					if len(vs.Values) == len(vs.Names) {
						set = t.eval(s, vs.Values[i])
					} else {
						set = t.eval(s, vs.Values[0]) // tuple from call
					}
					if obj := info.Defs[name]; obj != nil && len(set) > 0 {
						if t.joinObj(s, obj, set) {
							changed = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			xt := t.eval(s, n.X)
			if len(xt) > 0 && n.Value != nil {
				if t.joinLHS(s, n.Value, xt) {
					changed = true
				}
			}
			if len(xt) > 0 && n.Key != nil {
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						if t.joinLHS(s, n.Key, xt) {
							changed = true
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

func (ts tokSet) clone() tokSet {
	out := make(tokSet, len(ts))
	for k, o := range ts {
		out[k] = o
	}
	return out
}

// assignRHS evaluates the right-hand sides of an assignment, expanding
// a single multi-value expression across the LHS slots per result
// position, so `off, seg := f()` taints each variable only with its
// own result's taint.
func (t *taintAnalysis) assignRHS(s *fnSummary, n *ast.AssignStmt) []tokSet {
	out := make([]tokSet, len(n.Lhs))
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		return t.evalMulti(s, n.Rhs[0], len(n.Lhs))
	}
	for i := range n.Lhs {
		if i < len(n.Rhs) {
			out[i] = t.eval(s, n.Rhs[i])
		} else {
			out[i] = tokSet{}
		}
	}
	return out
}

// evalMulti evaluates a multi-valued expression (tuple-returning call,
// `v, ok` map/assert/receive forms) into n per-position token sets.
func (t *taintAnalysis) evalMulti(s *fnSummary, e ast.Expr, n int) []tokSet {
	out := make([]tokSet, n)
	for i := range out {
		out[i] = tokSet{}
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		// v, ok := m[k] / x.(T) / <-ch: the value slot carries the
		// operand's taint, the bool is clean.
		out[0] = t.eval(s, e)
		return out
	}
	callees := t.cg.CalleesAt(call)
	if len(callees) == 0 {
		// Unknown tuple call: pass-through into the value slots.
		set := t.passThrough(s, call)
		for i := range out {
			out[i] = set
		}
		return out
	}
	for _, callee := range callees {
		if guestReadFuncs[callee.Name()] {
			desc := "guest memory via " + callee.Name()
			out[0][tokKey{kind: tokSrc, src: desc}] = origin{pos: call.Pos(), desc: desc}
			continue
		}
		sum := t.summaries[callee]
		if sum == nil || len(sum.rets) != n {
			set := t.passThrough(s, call)
			for i := range out {
				out[i].join(set)
			}
			continue
		}
		for i, rset := range sum.rets {
			out[i].join(t.mapCalleeToks(s, call, rset))
		}
	}
	return out
}

// mapCalleeToks translates a callee summary's token set into the
// caller's context: sources and field tokens are global, parameter
// tokens resolve to the call-site argument expressions.
func (t *taintAnalysis) mapCalleeToks(s *fnSummary, call *ast.CallExpr, toks tokSet) tokSet {
	out := make(tokSet)
	for k, o := range toks {
		switch k.kind {
		case tokSrc, tokField:
			out[k] = o
		case tokParam:
			out.join(t.evalCallArg(s, call, k.param))
		}
	}
	return out
}

// joinLHS merges taint into an assignment target: the local variable it
// is rooted at (writing a tainted element taints the whole slice).
// Writes through a struct field are deliberately NOT smeared onto the
// base object — the field-based global facts (recordFieldWrites) track
// that channel precisely; smearing the receiver would flag every later
// access through the object.
func (t *taintAnalysis) joinLHS(s *fnSummary, lhs ast.Expr, toks tokSet) bool {
	if len(toks) == 0 {
		return false
	}
	info := s.node.Pkg.Info
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil || x.Name == "_" {
				return false
			}
			return t.joinObj(s, obj, toks)
		case *ast.SelectorExpr:
			return false // field write: handled field-based
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (t *taintAnalysis) joinObj(s *fnSummary, obj types.Object, toks tokSet) bool {
	set, ok := s.env[obj]
	if !ok {
		set = make(tokSet)
		s.env[obj] = set
	}
	return set.join(toks)
}

// eval computes the taint token set of an expression under the current
// environment.
func (t *taintAnalysis) eval(s *fnSummary, e ast.Expr) tokSet {
	info := s.node.Pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		if set, ok := s.env[info.ObjectOf(e)]; ok {
			return set
		}
	case *ast.ParenExpr:
		return t.eval(s, e.X)
	case *ast.StarExpr:
		return t.eval(s, e.X)
	case *ast.UnaryExpr:
		return t.eval(s, e.X)
	case *ast.TypeAssertExpr:
		return t.eval(s, e.X)
	case *ast.IndexExpr:
		return t.eval(s, e.X) // element of a tainted container
	case *ast.SliceExpr:
		return t.eval(s, e.X)
	case *ast.SelectorExpr:
		return t.evalSelector(s, e)
	case *ast.BinaryExpr:
		return t.evalBinary(s, e)
	case *ast.CallExpr:
		return t.evalCall(s, e)
	case *ast.CompositeLit:
		// Struct values carry taint only through their fields, which
		// recordLitFieldWrites tracks globally; unioning the element
		// taints into the value would smear one tainted field over
		// every later read of the object. Slices/arrays/maps union:
		// element reads evaluate to the container's taint.
		if tv, ok := info.Types[e]; ok {
			typ := tv.Type
			if p, ok := typ.(*types.Pointer); ok {
				typ = p.Elem()
			}
			if _, isStruct := typ.Underlying().(*types.Struct); isStruct {
				return tokSet{}
			}
		}
		out := make(tokSet)
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out.join(t.eval(s, kv.Value))
			} else {
				out.join(t.eval(s, el))
			}
		}
		return out
	}
	return tokSet{}
}

// evalSelector handles field reads: the base's taint carries through,
// a read off a guest-state struct is an intrinsic source, and a read of
// a program-declared field picks up that field's global taint.
func (t *taintAnalysis) evalSelector(s *fnSummary, e *ast.SelectorExpr) tokSet {
	info := s.node.Pkg.Info
	sel, ok := info.Selections[e]
	if !ok || sel.Kind() != types.FieldVal {
		// Package-qualified name or method value.
		if obj := info.Uses[e.Sel]; obj != nil {
			if set, ok := s.env[obj]; ok {
				return set
			}
		}
		return tokSet{}
	}
	out := t.eval(s, e.X).clone()
	fieldVar, _ := sel.Obj().(*types.Var)
	if tn := sourceTypeName(info, e.X); tn != "" {
		desc := fmt.Sprintf("guest-state field %s.%s", tn, e.Sel.Name)
		out[tokKey{kind: tokSrc, src: desc}] = origin{pos: e.Pos(), desc: desc}
	}
	if fieldVar != nil && isProgramField(fieldVar) {
		out[tokKey{kind: tokField, field: fieldVar}] = origin{pos: e.Pos(), desc: fieldDesc(fieldVar)}
	}
	return out
}

// sourceTypeName reports the guest-state type name if expr's type
// (after pointer stripping) is one of the source structs.
func sourceTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	typ := tv.Type
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return ""
	}
	if sourceStructTypes[named.Obj().Name()] {
		return named.Obj().Name()
	}
	return ""
}

// isProgramField restricts field-based taint to structs declared in the
// analyzed program (module or fixture packages), not the stdlib.
func isProgramField(f *types.Var) bool {
	return f.Pkg() != nil && (strings.HasPrefix(f.Pkg().Path(), ModulePath) ||
		strings.HasPrefix(f.Pkg().Path(), "fixture/"))
}

func fieldDesc(f *types.Var) string {
	return "field " + f.Name()
}

func (t *taintAnalysis) evalBinary(s *fnSummary, e *ast.BinaryExpr) tokSet {
	info := s.node.Pkg.Info
	switch e.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
		token.LAND, token.LOR:
		return tokSet{} // booleans carry no index taint
	case token.AND:
		// A constant mask bounds the value: sanitized.
		if isConstExpr(info, e.X) || isConstExpr(info, e.Y) {
			return tokSet{}
		}
	case token.REM:
		// x % y is bounded by y; taint follows the modulus only.
		return t.eval(s, e.Y)
	}
	out := t.eval(s, e.X).clone()
	out.join(t.eval(s, e.Y))
	return out
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// evalCall models calls: conversions and builtins inline, guest-memory
// readers as sources, program functions through their return summaries,
// and unknown (stdlib) functions as taint-preserving pass-through.
func (t *taintAnalysis) evalCall(s *fnSummary, call *ast.CallExpr) tokSet {
	info := s.node.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return t.eval(s, call.Args[0]) // conversion
		}
		return tokSet{}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "copy", "make", "new", "delete", "clear":
				return tokSet{}
			case "min":
				// min() with any untainted operand clamps the result.
				out := make(tokSet)
				for _, a := range call.Args {
					at := t.eval(s, a)
					if len(at) == 0 {
						return tokSet{}
					}
					out.join(at)
				}
				return out
			case "append", "max":
				out := make(tokSet)
				for _, a := range call.Args {
					out.join(t.eval(s, a))
				}
				return out
			default:
				return tokSet{}
			}
		}
	}

	callees := t.cg.CalleesAt(call)
	if len(callees) == 0 {
		return t.passThrough(s, call)
	}
	out := make(tokSet)
	for _, callee := range callees {
		if guestReadFuncs[callee.Name()] {
			desc := "guest memory via " + callee.Name()
			out[tokKey{kind: tokSrc, src: desc}] = origin{pos: call.Pos(), desc: desc}
			continue
		}
		sum := t.summaries[callee]
		if sum == nil {
			out.join(t.passThrough(s, call))
			continue
		}
		for _, rset := range sum.rets {
			out.join(t.mapCalleeToks(s, call, rset))
		}
	}
	return out
}

// passThrough is the model for functions without a body in the program
// (stdlib): taint in, taint out.
func (t *taintAnalysis) passThrough(s *fnSummary, call *ast.CallExpr) tokSet {
	out := make(tokSet)
	for _, a := range call.Args {
		out.join(t.eval(s, a))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := s.node.Pkg.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			out.join(t.eval(s, sel.X))
		}
	}
	return out
}

// evalCallArg returns the taint of the expression bound to a callee
// parameter (-1 = receiver) at this call site.
func (t *taintAnalysis) evalCallArg(s *fnSummary, call *ast.CallExpr, param int) tokSet {
	if param == -1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if selInfo, ok := s.node.Pkg.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
				return t.eval(s, sel.X)
			}
		}
		return tokSet{}
	}
	if param >= 0 && param < len(call.Args) {
		return t.eval(s, call.Args[param])
	}
	if len(call.Args) > 0 && param >= len(call.Args) {
		return t.eval(s, call.Args[len(call.Args)-1]) // variadic tail
	}
	return tokSet{}
}

// --- flows and sinks ----------------------------------------------------

// collectFlows records, against the stabilized environment: sink hits,
// taint entering call arguments, taint stored into fields, and taint
// reaching return values.
func (t *taintAnalysis) collectFlows(s *fnSummary) {
	info := s.node.Pkg.Info
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			tv, ok := info.Types[n.X]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array:
				t.checkSink(s, n.Index, n.Pos(), "slice/array index")
			case *types.Pointer: // *[N]T indexing
				t.checkSink(s, n.Index, n.Pos(), "slice/array index")
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil {
					t.checkSink(s, bound, n.Pos(), "slice bound")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.SHL || n.Op == token.SHR {
				t.checkSink(s, n.Y, n.Pos(), "shift amount")
			}
		case *ast.AssignStmt:
			if n.Tok == token.SHL_ASSIGN || n.Tok == token.SHR_ASSIGN {
				t.checkSink(s, n.Rhs[0], n.Pos(), "shift amount")
			}
			t.recordFieldWrites(s, n)
		case *ast.CompositeLit:
			t.recordLitFieldWrites(s, n)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					for _, a := range n.Args[1:] {
						t.checkSink(s, a, n.Pos(), "make length")
					}
				}
			}
			t.recordCallFlows(s, n)
		case *ast.ReturnStmt:
			switch {
			case len(n.Results) == len(s.rets):
				for i, r := range n.Results {
					s.rets[i].join(t.eval(s, r))
				}
			case len(n.Results) == 1 && len(s.rets) > 1:
				// return f() forwarding a tuple
				for i, set := range t.evalMulti(s, n.Results[0], len(s.rets)) {
					s.rets[i].join(set)
				}
			case len(n.Results) == 0 && s.node.Decl.Type.Results != nil:
				i := 0
				for _, field := range s.node.Decl.Type.Results.List {
					for _, name := range field.Names {
						if set, ok := s.env[info.Defs[name]]; ok && i < len(s.rets) {
							s.rets[i].join(set)
						}
						i++
					}
					if len(field.Names) == 0 {
						i++
					}
				}
			}
		}
		return true
	})
}

// checkSink records a sink hit unless the value is constant or
// sanitized.
func (t *taintAnalysis) checkSink(s *fnSummary, e ast.Expr, pos token.Pos, what string) {
	info := s.node.Pkg.Info
	if isConstExpr(info, e) {
		return
	}
	toks := t.eval(s, e)
	if len(toks) == 0 {
		return
	}
	if t.isSanitized(s, e, pos) {
		return
	}
	s.sinks = append(s.sinks, sinkRec{pos: pos, what: what, toks: toks.clone()})
}

// isSanitized reports whether a sink value passed a bounds check (a
// root of the expression appears under a comparison or switch in this
// function) or carries a `// sanitized:` annotation on its line or the
// line above.
func (t *taintAnalysis) isSanitized(s *fnSummary, e ast.Expr, pos token.Pos) bool {
	roots := make(map[string]bool)
	addRootStrings(s.node.Pkg.Info, roots, e)
	for r := range roots {
		if s.checked[r] {
			return true
		}
	}
	file := fileOf(s.node.Pkg, pos)
	if file == nil {
		return false
	}
	lines := t.sanitizedLinesFor(file)
	line := t.pass.Prog.Fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// sanitizedLinesFor caches, per file, the lines covered by a
// `// sanitized: <why>` annotation (the comment's lines themselves, so
// both trailing comments and comment-above forms work).
func (t *taintAnalysis) sanitizedLinesFor(f *ast.File) map[int]bool {
	if lines, ok := t.sanitized[f]; ok {
		return lines
	}
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		if !strings.Contains(cg.Text(), "sanitized:") {
			continue
		}
		start := t.pass.Prog.Fset.Position(cg.Pos()).Line
		end := t.pass.Prog.Fset.Position(cg.End()).Line
		for l := start; l <= end; l++ {
			lines[l] = true
		}
	}
	t.sanitized[f] = lines
	return lines
}

// recordFieldWrites captures taint stored into struct fields through
// assignment statements.
func (t *taintAnalysis) recordFieldWrites(s *fnSummary, n *ast.AssignStmt) {
	info := s.node.Pkg.Info
	toks := t.assignRHS(s, n)
	for i, lhs := range n.Lhs {
		set := toks[i]
		if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
			set = set.clone()
			set.join(t.eval(s, lhs))
		}
		if len(set) == 0 {
			continue
		}
		target := lhs
		for {
			if idx, ok := target.(*ast.IndexExpr); ok {
				target = idx.X
				continue
			}
			if star, ok := target.(*ast.StarExpr); ok {
				target = star.X
				continue
			}
			break
		}
		sel, ok := target.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selInfo, ok := info.Selections[sel]
		if !ok || selInfo.Kind() != types.FieldVal {
			continue
		}
		f, ok := selInfo.Obj().(*types.Var)
		if !ok || !isProgramField(f) {
			continue
		}
		if t.isSanitized(s, n.Rhs[min(i, len(n.Rhs)-1)], n.Pos()) {
			continue
		}
		s.fields = append(s.fields, fieldFlow{field: f, toks: set.clone(), pos: n.Pos()})
	}
}

// recordLitFieldWrites captures taint stored into fields via composite
// literals (DiskRequest{LBA: guestLBA, ...}).
func (t *taintAnalysis) recordLitFieldWrites(s *fnSummary, n *ast.CompositeLit) {
	info := s.node.Pkg.Info
	tv, ok := info.Types[n]
	if !ok {
		return
	}
	typ := tv.Type
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	st, ok := typ.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, el := range n.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		set := t.eval(s, kv.Value)
		if len(set) == 0 {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == key.Name && isProgramField(f) {
				if !t.isSanitized(s, kv.Value, kv.Pos()) {
					s.fields = append(s.fields, fieldFlow{field: f, toks: set.clone(), pos: kv.Pos()})
				}
				break
			}
		}
	}
}

// recordCallFlows captures taint entering callee parameters, for the
// interprocedural fixpoint.
func (t *taintAnalysis) recordCallFlows(s *fnSummary, call *ast.CallExpr) {
	callees := t.cg.CalleesAt(call)
	if len(callees) == 0 {
		return
	}
	for _, callee := range callees {
		if t.cg.Node(callee) == nil {
			continue // no body: nothing to propagate into
		}
		for j, a := range call.Args {
			set := t.eval(s, a)
			if len(set) == 0 || t.isSanitized(s, a, a.Pos()) {
				continue
			}
			s.args = append(s.args, argFlow{callee: callee, param: j, toks: set.clone(), pos: call.Pos()})
		}
		// Receiver taint is deliberately not propagated as a fact: an
		// object is "tainted" only through specific fields, and those
		// travel via the field-based channel.
	}
}

// --- phase 2: global fact fixpoint --------------------------------------

// tokenFact resolves a symbolic token to its active taint fact within
// fn, or nil if the token is not currently tainted.
func (t *taintAnalysis) tokenFact(fn *types.Func, k tokKey, o origin) (*taintFact, bool) {
	switch k.kind {
	case tokSrc:
		return &taintFact{path: []string{fmt.Sprintf("%s (in %s)", o.desc, FuncDisplayName(fn))}}, true
	case tokParam:
		f, ok := t.factFns[factKey{fn: fn, param: k.param}]
		return f, ok
	case tokField:
		f, ok := t.factFns[factKey{param: -2, field: k.field}]
		return f, ok
	}
	return nil, false
}

const maxPathSteps = 12

func (t *taintAnalysis) solveFacts() {
	for changed := true; changed; {
		changed = false
		for _, node := range t.cg.Ordered {
			s := t.summaries[node.Fn]
			if s == nil {
				continue
			}
			for _, af := range s.args {
				for _, k := range af.toks.sortedKeys() {
					base, ok := t.tokenFact(node.Fn, k, af.toks[k])
					if !ok {
						continue
					}
					key := factKey{fn: af.callee, param: af.param}
					if _, exists := t.factFns[key]; exists {
						continue
					}
					if len(base.path) >= maxPathSteps {
						continue
					}
					what := "receiver"
					if af.param >= 0 {
						what = fmt.Sprintf("parameter %s", calleeParamName(t.cg, af.callee, af.param))
					}
					t.factFns[key] = &taintFact{path: append(append([]string{}, base.path...),
						fmt.Sprintf("passed to %s of %s", what, FuncDisplayName(af.callee)))}
					changed = true
				}
			}
			for _, ff := range s.fields {
				for _, k := range ff.toks.sortedKeys() {
					base, ok := t.tokenFact(node.Fn, k, ff.toks[k])
					if !ok {
						continue
					}
					key := factKey{param: -2, field: ff.field}
					if _, exists := t.factFns[key]; exists {
						continue
					}
					if len(base.path) >= maxPathSteps {
						continue
					}
					t.factFns[key] = &taintFact{path: append(append([]string{}, base.path...),
						fmt.Sprintf("stored into field %s (in %s)", fieldQualName(ff.field), FuncDisplayName(node.Fn)))}
					changed = true
				}
			}
		}
	}
}

// calleeParamName names a callee parameter for path rendering.
func calleeParamName(cg *CallGraph, fn *types.Func, idx int) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return fmt.Sprintf("#%d", idx)
	}
	if name := sig.Params().At(min(idx, sig.Params().Len()-1)).Name(); name != "" {
		return name
	}
	return fmt.Sprintf("#%d", idx)
}

func fieldQualName(f *types.Var) string {
	name := f.Name()
	if owner := fieldOwner(f); owner != "" {
		name = owner + "." + name
	}
	return name
}

// fieldOwner finds the struct type name declaring f, best-effort.
func fieldOwner(f *types.Var) string {
	if f.Pkg() == nil {
		return ""
	}
	scope := f.Pkg().Scope()
	for _, n := range scope.Names() {
		tn, ok := scope.Lookup(n).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name()
			}
		}
	}
	return ""
}

// --- phase 3: reporting -------------------------------------------------

func (t *taintAnalysis) report() {
	targets := make(map[*Package]bool, len(t.pass.Targets))
	for _, pkg := range t.pass.Targets {
		targets[pkg] = true
	}
	for _, node := range t.cg.Ordered {
		if !targets[node.Pkg] {
			continue
		}
		s := t.summaries[node.Fn]
		if s == nil {
			continue
		}
		for _, sink := range s.sinks {
			for _, k := range sink.toks.sortedKeys() {
				fact, ok := t.tokenFact(node.Fn, k, sink.toks[k])
				if !ok {
					continue
				}
				path := strings.Join(append(append([]string{}, fact.path...),
					fmt.Sprintf("reaches %s in %s", sink.what, FuncDisplayName(node.Fn))), " -> ")
				t.pass.Reportf(sink.pos, "guest-controlled value reaches %s without bounds check or // sanitized: annotation; path: %s", sink.what, path)
				break // one report per sink site
			}
		}
	}
}
