package analysis

import (
	"fmt"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadEffectsFixture loads the hand-built mini program and computes its
// effect summaries.
func loadEffectsFixture(t *testing.T) (*Program, *Effects) {
	t.Helper()
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", "effects")
	prog, err := LoadDirs(root, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return prog, prog.Effects()
}

// summaryByName finds the summary of the (unique) function or method
// with the given bare name in the fixture.
func summaryByName(t *testing.T, eff *Effects, name string) *EffectSummary {
	t.Helper()
	var found *EffectSummary
	for fn, s := range eff.Summaries {
		if fn.Name() != name {
			continue
		}
		if found != nil {
			t.Fatalf("fixture has two functions named %s", name)
		}
		found = s
	}
	if found == nil {
		t.Fatalf("no summary for fixture function %s", name)
	}
	return found
}

// regionStrings renders a summary's write regions for comparison.
func regionStrings(s *EffectSummary) []string {
	var out []string
	for _, r := range s.WriteRegions() {
		out = append(out, r.String())
	}
	return out
}

// retStrings renders a summary's return-alias sets for comparison.
func retStrings(s *EffectSummary) []string {
	var out []string
	for i, set := range s.Rets {
		for _, r := range set.sortedRegions() {
			out = append(out, fmt.Sprintf("r%d=%s", i, r.String()))
		}
	}
	return out
}

// TestEffectSummaries pins the engine's output on the mini program:
// which regions each function writes and what its results alias. This
// is the contract globalstate and isolation build on.
func TestEffectSummaries(t *testing.T) {
	_, eff := loadEffectsFixture(t)
	cases := []struct {
		fn     string
		writes []string // Region.String() values, sorted
		rets   []string // "r<i>=<region>" values
	}{
		{"SetReg", []string{"receiver"}, nil},
		{"Fill", []string{"param#1"}, nil},
		{"Bump", []string{"global Counter"}, nil},
		{"BufAlias", nil, []string{"r0=global Buf"}},
		{"WriteThroughAlias", []string{"global Buf"}, nil},
		{"CopyOut", nil, nil}, // scalar copies sever aliasing
		{"AddrOfCounter", nil, []string{"r0=global Counter"}},
		{"WriteViaPointer", []string{"global Counter"}, nil},
		// Step writes nothing itself; every region is mapped through a
		// call site: receiver via SetReg, param#0 via Fill, the global
		// via Bump.
		{"Step", []string{"receiver", "param#0", "global Counter"}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			s := summaryByName(t, eff, tc.fn)
			got := regionStrings(s)
			want := append([]string{}, tc.writes...)
			sort.Strings(got)
			sort.Strings(want)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("writes of %s = [%s], want [%s]", tc.fn, strings.Join(got, ","), strings.Join(want, ","))
			}
			gotRets := retStrings(s)
			wantRets := append([]string{}, tc.rets...)
			sort.Strings(gotRets)
			sort.Strings(wantRets)
			if strings.Join(gotRets, ",") != strings.Join(wantRets, ",") {
				t.Errorf("rets of %s = [%s], want [%s]", tc.fn, strings.Join(gotRets, ","), strings.Join(wantRets, ","))
			}
		})
	}
}

// TestEffectWritePaths checks the interprocedural attribution: a mapped
// write keeps the original store site and records the call chain.
func TestEffectWritePaths(t *testing.T) {
	prog, eff := loadEffectsFixture(t)
	step := summaryByName(t, eff, "Step")
	var counter *types.Var
	for r := range step.Writes {
		if r.Kind == RegionGlobal && r.Global.Name() == "Counter" {
			counter = r.Global
		}
	}
	if counter == nil {
		t.Fatal("Step has no write effect on Counter")
	}
	w := step.WritesGlobal(counter)
	if w.Direct {
		t.Error("Step's Counter write should be mapped, not direct")
	}
	if len(w.Path) != 2 || !strings.Contains(w.Path[0], "Bump") || !strings.Contains(w.Path[1], "Step") {
		t.Errorf("Counter write path = %v, want [Bump, Step]", w.Path)
	}
	pos := prog.Fset.Position(w.Pos)
	if filepath.Base(pos.Filename) != "effects.go" {
		t.Errorf("write site file = %s, want effects.go", pos.Filename)
	}
	// The representative site must be the actual store in Bump.
	bump := summaryByName(t, eff, "Bump")
	bw := bump.WritesGlobal(counter)
	if bw == nil || !bw.Direct {
		t.Fatal("Bump's Counter write should be direct")
	}
	if bw.Pos != w.Pos {
		t.Error("mapped write should keep the original store site")
	}
}
