package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the write-effect summary engine: the region/effect
// analysis the shared-state analyzers (globalstate, isolation) build
// on, in the same way taint builds on the call graph. It answers, for
// every function in the program, "where can a write performed by (or on
// behalf of) this function land?" over a four-region abstraction:
//
//   - receiver-owned state: anything reachable from the method
//     receiver's object graph (a Kernel writing its scheduler queues, a
//     device model updating its registers);
//   - parameter-owned state: anything reachable from parameter i (a
//     helper filling a caller-provided buffer);
//   - package globals: a named package-level variable, reached either
//     directly or through an alias (a pointer, slice or map handed out
//     by an accessor);
//   - local state: storage allocated inside the function (new, make,
//     composite literals, local variables). Local writes are invisible
//     to callers and are not recorded.
//
// Summaries are interprocedural: a call maps the callee's write regions
// through the call site (callee writes its receiver → the caller's
// receiver expression's region; callee writes parameter j → the
// region of argument j; global writes stay global), and return values
// carry the regions they may alias, so a write through an accessor
// result is attributed to the accessor's underlying storage. The whole
// program iterates to a fixpoint, like the taint summaries.
//
// The abstraction over-approximates in the conservative direction for
// its consumers: aliases are unioned (a value that may point into the
// receiver or a global is treated as both), functions without a body in
// the program (stdlib) are assumed to write through every mutable
// pointer-like argument (pointer, slice, map, chan — not interfaces or
// strings, which would drown the analysis in error-wrapping noise), and
// writes inside function literals are charged to the enclosing
// declaration. Extra write regions can only make globalstate/isolation
// report more, never less.

// RegionKind classifies the storage a write may reach.
type RegionKind uint8

// The region lattice. RegionLocal is the bottom: writes there stay
// invisible outside the function.
const (
	RegionLocal RegionKind = iota
	RegionRecv
	RegionParam
	RegionGlobal
)

// Region is one abstract storage location.
type Region struct {
	Kind   RegionKind
	Param  int        // valid for RegionParam
	Global *types.Var // valid for RegionGlobal
}

func (r Region) String() string {
	switch r.Kind {
	case RegionRecv:
		return "receiver"
	case RegionParam:
		return fmt.Sprintf("param#%d", r.Param)
	case RegionGlobal:
		if r.Global != nil {
			return "global " + r.Global.Name()
		}
		return "global"
	}
	return "local"
}

// regionSet is the alias set of a value: the regions its pointed-to
// storage may belong to. Empty means "local/unknown storage only".
type regionSet map[Region]bool

func (rs regionSet) join(other regionSet) bool {
	changed := false
	for r := range other {
		if !rs[r] {
			rs[r] = true
			changed = true
		}
	}
	return changed
}

func (rs regionSet) clone() regionSet {
	out := make(regionSet, len(rs))
	for r := range rs {
		out[r] = true
	}
	return out
}

// sortedRegions orders a region set deterministically for signatures
// and reporting.
func (rs regionSet) sortedRegions() []Region {
	out := make([]Region, 0, len(rs))
	for r := range rs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return regionLess(out[i], out[j]) })
	return out
}

func regionLess(a, b Region) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Param != b.Param {
		return a.Param < b.Param
	}
	if a.Global != b.Global {
		return globalVarKey(a.Global) < globalVarKey(b.Global)
	}
	return false
}

func globalVarKey(v *types.Var) string {
	if v == nil {
		return ""
	}
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	return pkg + "." + v.Name()
}

// WriteEffect is one region a function may write, with a representative
// site and the interprocedural chain that reaches it. Path[0] names the
// function containing the actual store; later entries are the callers
// the effect was mapped through, innermost first.
type WriteEffect struct {
	Region Region
	Pos    token.Pos // the store site (stable across the mapping)
	Path   []string
	// Direct reports whether the store statement is in this function's
	// own body (globalstate classifies writers by this).
	Direct bool
}

// EffectSummary is the per-function result: the write regions and the
// regions each return value may alias.
type EffectSummary struct {
	Fn   *types.Func
	Node *FuncNode

	// Writes holds one representative effect per written region.
	Writes map[Region]*WriteEffect

	// Rets[i] is the alias set of result i — which storage a caller
	// reaches by writing through the returned value.
	Rets []regionSet

	env    map[types.Object]regionSet
	recv   *types.Var
	params []*types.Var
}

// WriteRegions lists the written regions in deterministic order.
func (s *EffectSummary) WriteRegions() []Region {
	rs := make(regionSet, len(s.Writes))
	for r := range s.Writes {
		rs[r] = true
	}
	return rs.sortedRegions()
}

// WritesGlobal returns the effect on the given package-level var, if
// any.
func (s *EffectSummary) WritesGlobal(v *types.Var) *WriteEffect {
	return s.Writes[Region{Kind: RegionGlobal, Global: v}]
}

// signature renders the caller-visible part of the summary for fixpoint
// detection.
func (s *EffectSummary) signature() string {
	var parts []string
	for _, r := range s.WriteRegions() {
		parts = append(parts, r.String())
	}
	for i, set := range s.Rets {
		for _, r := range set.sortedRegions() {
			parts = append(parts, fmt.Sprintf("r%d=%s", i, r.String()))
		}
	}
	return strings.Join(parts, "|")
}

// Effects is the program-wide effect-summary table.
type Effects struct {
	prog      *Program
	cg        *CallGraph
	Summaries map[*types.Func]*EffectSummary
}

// Summary returns fn's effect summary, or nil for functions without a
// body in the program.
func (e *Effects) Summary(fn *types.Func) *EffectSummary { return e.Summaries[fn] }

// Effects returns the program's write-effect summaries, computing them
// on first use (shared across analyzers like the call graph).
func (p *Program) Effects() *Effects {
	if p.eff == nil {
		p.eff = computeEffects(p)
	}
	return p.eff
}

const maxEffectRounds = 12

func computeEffects(prog *Program) *Effects {
	e := &Effects{
		prog:      prog,
		cg:        prog.CallGraph(),
		Summaries: make(map[*types.Func]*EffectSummary),
	}
	for round := 0; round < maxEffectRounds; round++ {
		changed := false
		for _, node := range e.cg.Ordered {
			old := ""
			if prev, ok := e.Summaries[node.Fn]; ok {
				old = prev.signature()
			}
			s := e.analyzeFunc(node)
			e.Summaries[node.Fn] = s
			if s.signature() != old {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// analyzeFunc computes one function's summary against the current round
// of callee summaries.
func (e *Effects) analyzeFunc(node *FuncNode) *EffectSummary {
	s := &EffectSummary{
		Fn:     node.Fn,
		Node:   node,
		Writes: make(map[Region]*WriteEffect),
		env:    make(map[types.Object]regionSet),
	}
	info := node.Pkg.Info
	fd := node.Decl
	if sig, ok := node.Fn.Type().(*types.Signature); ok {
		s.Rets = make([]regionSet, sig.Results().Len())
		for i := range s.Rets {
			s.Rets[i] = make(regionSet)
		}
	}

	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if v, ok := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
			s.recv = v
			s.env[v] = regionSet{Region{Kind: RegionRecv}: true}
		}
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				s.params = append(s.params, v)
				s.env[v] = regionSet{Region{Kind: RegionParam, Param: idx}: true}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}

	// Local alias propagation to a fixpoint, then effect collection
	// against the stabilized environment.
	for iter := 0; iter < 30; iter++ {
		if !e.propagateOnce(s) {
			break
		}
	}
	e.collectEffects(s)
	return s
}

// propagateOnce runs one pass of alias propagation through assignments;
// reports whether the environment changed.
func (e *Effects) propagateOnce(s *EffectSummary) bool {
	changed := false
	info := s.Node.Pkg.Info
	ast.Inspect(s.Node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			sets := e.assignRHS(s, n)
			for i, lhs := range n.Lhs {
				if e.bindLHS(s, lhs, sets[i]) {
					changed = true
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for i, name := range vs.Names {
					var set regionSet
					if len(vs.Values) == len(vs.Names) {
						set = e.eval(s, vs.Values[i])
					} else if sets := e.evalMulti(s, vs.Values[0], len(vs.Names)); i < len(sets) {
						set = sets[i]
					}
					if obj := info.Defs[name]; obj != nil && len(set) > 0 {
						if e.bindObj(s, obj, set) {
							changed = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if e.bindLHS(s, n.Value, e.eval(s, n.X)) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// bindLHS merges an alias set into an assignment target. A plain local
// identifier takes the regions directly; a write through a local's
// field/element also smears the stored regions onto the local, so that
// a global pointer stashed in a local struct keeps its global identity
// when later written through (`x.f = globalPtr; x.f.y = 1`).
func (e *Effects) bindLHS(s *EffectSummary, lhs ast.Expr, set regionSet) bool {
	if len(set) == 0 {
		return false
	}
	info := s.Node.Pkg.Info
	e2 := lhs
	for {
		switch x := e2.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil || x.Name == "_" {
				return false
			}
			if v, ok := obj.(*types.Var); ok && isPackageLevelVar(v) {
				return false // global targets are write effects, not bindings
			}
			return e.bindObj(s, obj, set)
		case *ast.SelectorExpr:
			e2 = x.X
		case *ast.IndexExpr:
			e2 = x.X
		case *ast.StarExpr:
			e2 = x.X
		case *ast.ParenExpr:
			e2 = x.X
		default:
			return false
		}
	}
}

func (e *Effects) bindObj(s *EffectSummary, obj types.Object, set regionSet) bool {
	cur, ok := s.env[obj]
	if !ok {
		cur = make(regionSet)
		s.env[obj] = cur
	}
	return cur.join(set)
}

// assignRHS evaluates the right-hand sides, expanding a single
// multi-value expression per result position.
func (e *Effects) assignRHS(s *EffectSummary, n *ast.AssignStmt) []regionSet {
	out := make([]regionSet, len(n.Lhs))
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		return e.evalMulti(s, n.Rhs[0], len(n.Lhs))
	}
	for i := range n.Lhs {
		if i < len(n.Rhs) {
			out[i] = e.eval(s, n.Rhs[i])
		} else {
			out[i] = regionSet{}
		}
	}
	return out
}

// evalMulti evaluates a multi-valued expression into n per-position
// alias sets.
func (e *Effects) evalMulti(s *EffectSummary, expr ast.Expr, n int) []regionSet {
	out := make([]regionSet, n)
	for i := range out {
		out[i] = regionSet{}
	}
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		// v, ok := m[k] / x.(T) / <-ch: the value slot aliases the operand.
		out[0] = e.eval(s, expr)
		return out
	}
	for _, callee := range e.cg.CalleesAt(call) {
		sum := e.Summaries[callee]
		if sum == nil || len(sum.Rets) != n {
			set := e.passThroughArgs(s, call)
			for i := range out {
				out[i].join(set)
			}
			continue
		}
		for i, rset := range sum.Rets {
			out[i].join(e.mapCalleeRegions(s, call, rset))
		}
	}
	if len(e.cg.CalleesAt(call)) == 0 {
		set := e.passThroughArgs(s, call)
		for i := range out {
			out[i].join(set)
		}
	}
	return out
}

// eval computes the alias set of an expression under the current
// environment.
func (e *Effects) eval(s *EffectSummary, expr ast.Expr) regionSet {
	info := s.Node.Pkg.Info
	// A value of basic type (number, string, bool) is a copy: holding
	// it cannot reach anyone else's storage, so it severs aliasing. An
	// int looked up from a global table is just an int. Only the
	// address-of operator re-establishes a region for a scalar, and
	// that goes through evalAddr below.
	if tv, ok := info.Types[expr]; ok && tv.Type != nil {
		if _, basic := tv.Type.Underlying().(*types.Basic); basic {
			return regionSet{}
		}
	}
	switch expr := expr.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(expr)
		if v, ok := obj.(*types.Var); ok && isProgramGlobal(v) {
			return regionSet{Region{Kind: RegionGlobal, Global: v}: true}
		}
		if set, ok := s.env[obj]; ok {
			return set
		}
	case *ast.ParenExpr:
		return e.eval(s, expr.X)
	case *ast.StarExpr:
		return e.eval(s, expr.X)
	case *ast.UnaryExpr:
		if expr.Op == token.AND {
			return e.evalAddr(s, expr.X)
		}
		return e.eval(s, expr.X)
	case *ast.TypeAssertExpr:
		return e.eval(s, expr.X)
	case *ast.IndexExpr:
		return e.eval(s, expr.X)
	case *ast.SliceExpr:
		return e.eval(s, expr.X)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[expr]; ok && sel.Kind() == types.FieldVal {
			return e.eval(s, expr.X)
		}
		// Package-qualified reference (pkg.Var) or method value.
		if v, ok := info.Uses[expr.Sel].(*types.Var); ok && isProgramGlobal(v) {
			return regionSet{Region{Kind: RegionGlobal, Global: v}: true}
		}
		return regionSet{}
	case *ast.CallExpr:
		return e.evalCall(s, expr)
	case *ast.CompositeLit:
		// Fresh storage, but pointers stored in the literal keep their
		// identity: writing through lit.f must still reach what f points
		// to, so the element regions union in.
		out := make(regionSet)
		for _, el := range expr.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out.join(e.eval(s, kv.Value))
			} else {
				out.join(e.eval(s, el))
			}
		}
		return out
	case *ast.BinaryExpr:
		// Pointer arithmetic does not exist; only comparisons and
		// string/number math reach here. No aliasing.
		return regionSet{}
	}
	return regionSet{}
}

// evalAddr computes the regions of an expression's own storage slot —
// the meaning of &expr. This is the one place a basic-typed variable
// re-enters the analysis: copying a scalar severs aliasing (see eval),
// but taking its address shares the variable itself.
func (e *Effects) evalAddr(s *EffectSummary, expr ast.Expr) regionSet {
	info := s.Node.Pkg.Info
	switch x := expr.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && isProgramGlobal(v) {
			return regionSet{Region{Kind: RegionGlobal, Global: v}: true}
		}
		if set, ok := s.env[obj]; ok {
			return set
		}
		return regionSet{}
	case *ast.ParenExpr:
		return e.evalAddr(s, x.X)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			// &x.f lives inside x's own storage (value base) or inside
			// whatever x points to (pointer base); cover both.
			out := e.evalAddr(s, x.X).clone()
			out.join(e.eval(s, x.X))
			return out
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isProgramGlobal(v) {
			return regionSet{Region{Kind: RegionGlobal, Global: v}: true}
		}
		return regionSet{}
	case *ast.IndexExpr:
		out := e.evalAddr(s, x.X).clone()
		out.join(e.eval(s, x.X))
		return out
	case *ast.StarExpr:
		return e.eval(s, x.X) // &*p is p's pointee
	}
	return e.eval(s, expr)
}

// evalCall models a call's result aliasing: conversions pass through,
// allocating builtins are fresh, known callees map their return alias
// sets through the site, unknown callees conservatively pass their
// arguments through.
func (e *Effects) evalCall(s *EffectSummary, call *ast.CallExpr) regionSet {
	info := s.Node.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return e.eval(s, call.Args[0]) // conversion
		}
		return regionSet{}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "len", "cap", "delete", "clear", "min", "max", "panic", "print", "println", "close", "copy":
				return regionSet{}
			case "append":
				// append may return the original backing store or a
				// fresh one; assume the original.
				if len(call.Args) > 0 {
					return e.eval(s, call.Args[0])
				}
				return regionSet{}
			default:
				return regionSet{}
			}
		}
	}
	callees := e.cg.CalleesAt(call)
	if len(callees) == 0 {
		return e.passThroughArgs(s, call)
	}
	out := make(regionSet)
	for _, callee := range callees {
		sum := e.Summaries[callee]
		if sum == nil {
			out.join(e.passThroughArgs(s, call))
			continue
		}
		for _, rset := range sum.Rets {
			out.join(e.mapCalleeRegions(s, call, rset))
		}
	}
	return out
}

// passThroughArgs is the aliasing model for functions without a body in
// the program: the result may alias any argument (and the receiver).
func (e *Effects) passThroughArgs(s *EffectSummary, call *ast.CallExpr) regionSet {
	out := make(regionSet)
	for _, a := range call.Args {
		out.join(e.eval(s, a))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := s.Node.Pkg.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			out.join(e.eval(s, sel.X))
		}
	}
	return out
}

// mapCalleeRegions translates a callee-side region set into the
// caller's frame: globals stay, receiver/params resolve to the call
// site's receiver/argument expressions.
func (e *Effects) mapCalleeRegions(s *EffectSummary, call *ast.CallExpr, rs regionSet) regionSet {
	out := make(regionSet)
	for r := range rs {
		switch r.Kind {
		case RegionGlobal:
			out[r] = true
		case RegionRecv:
			out.join(e.evalCallRecv(s, call))
		case RegionParam:
			out.join(e.evalCallArgRegion(s, call, r.Param))
		}
	}
	return out
}

func (e *Effects) evalCallRecv(s *EffectSummary, call *ast.CallExpr) regionSet {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := s.Node.Pkg.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			return e.eval(s, sel.X)
		}
	}
	return regionSet{}
}

func (e *Effects) evalCallArgRegion(s *EffectSummary, call *ast.CallExpr, param int) regionSet {
	if param >= 0 && param < len(call.Args) {
		return e.eval(s, call.Args[param])
	}
	if len(call.Args) > 0 && param >= len(call.Args) {
		return e.eval(s, call.Args[len(call.Args)-1]) // variadic tail
	}
	return regionSet{}
}

// --- effect collection ---------------------------------------------------

// collectEffects records, against the stabilized environment: store
// effects, callee effects mapped through call sites, and return-value
// alias sets.
func (e *Effects) collectEffects(s *EffectSummary) {
	info := s.Node.Pkg.Info
	ast.Inspect(s.Node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				break
			}
			for _, lhs := range n.Lhs {
				e.recordStore(s, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			e.recordStore(s, n.X, n.Pos())
		case *ast.CallExpr:
			e.recordCallEffects(s, n)
		case *ast.ReturnStmt:
			switch {
			case len(n.Results) == len(s.Rets):
				for i, r := range n.Results {
					s.Rets[i].join(e.eval(s, r))
				}
			case len(n.Results) == 1 && len(s.Rets) > 1:
				for i, set := range e.evalMulti(s, n.Results[0], len(s.Rets)) {
					s.Rets[i].join(set)
				}
			case len(n.Results) == 0 && s.Node.Decl.Type.Results != nil:
				i := 0
				for _, field := range s.Node.Decl.Type.Results.List {
					for _, name := range field.Names {
						if set, ok := s.env[info.Defs[name]]; ok && i < len(s.Rets) {
							s.Rets[i].join(set)
						}
						i++
					}
					if len(field.Names) == 0 {
						i++
					}
				}
			}
		}
		return true
	})
}

// recordStore attributes one store statement's target to its regions.
func (e *Effects) recordStore(s *EffectSummary, lhs ast.Expr, pos token.Pos) {
	info := s.Node.Pkg.Info
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok && isProgramGlobal(v) {
			e.addDirectWrite(s, Region{Kind: RegionGlobal, Global: v}, pos, "assignment to "+v.Name())
		}
		// A store to a local variable slot is invisible to callers.
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			e.addWriteSet(s, e.eval(s, x.X), pos, "field write "+x.Sel.Name)
			return
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isProgramGlobal(v) {
			e.addDirectWrite(s, Region{Kind: RegionGlobal, Global: v}, pos, "assignment to "+v.Name())
		}
	case *ast.IndexExpr:
		e.addWriteSet(s, e.eval(s, x.X), pos, "element write")
	case *ast.StarExpr:
		e.addWriteSet(s, e.eval(s, x.X), pos, "pointer write")
	}
}

// recordCallEffects maps a call's write effects into this summary:
// mutating builtins, known callee summaries, and the conservative model
// for bodyless functions.
func (e *Effects) recordCallEffects(s *EffectSummary, call *ast.CallExpr) {
	info := s.Node.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "copy", "delete", "clear", "append":
				if len(call.Args) > 0 {
					e.addWriteSet(s, e.eval(s, call.Args[0]), call.Pos(), b.Name())
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	callees := e.cg.CalleesAt(call)
	if len(callees) == 0 {
		// Bodyless (stdlib) function: assume it writes through every
		// mutable pointer-like argument and the receiver.
		for _, a := range call.Args {
			if tv, ok := info.Types[a]; ok && isMutableRef(tv.Type) {
				e.addWriteSet(s, e.eval(s, a), call.Pos(), "passed to external call")
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if selInfo, ok := info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
				// A method may mutate its receiver — unless the receiver
				// value cannot carry storage: interface method calls with
				// no in-program implementation (err.Error()) and methods
				// on scalars are reads as far as this analysis can see.
				mutable := true
				if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
					switch tv.Type.Underlying().(type) {
					case *types.Interface, *types.Basic:
						mutable = false
					}
				}
				if mutable {
					e.addWriteSet(s, e.eval(s, sel.X), call.Pos(), "external method call")
				}
			}
		}
		return
	}
	for _, callee := range callees {
		sum := e.Summaries[callee]
		if sum == nil {
			continue
		}
		for _, w := range sum.Writes {
			var sites regionSet
			switch w.Region.Kind {
			case RegionGlobal:
				sites = regionSet{w.Region: true}
			case RegionRecv:
				sites = e.evalCallRecv(s, call)
			case RegionParam:
				sites = e.evalCallArgRegion(s, call, w.Region.Param)
			}
			for r := range sites {
				if r.Kind == RegionLocal {
					continue
				}
				e.addMappedWrite(s, r, w)
			}
		}
	}
}

func (e *Effects) addWriteSet(s *EffectSummary, rs regionSet, pos token.Pos, desc string) {
	for r := range rs {
		if r.Kind == RegionLocal {
			continue
		}
		e.addDirectWrite(s, r, pos, desc)
	}
}

func (e *Effects) addDirectWrite(s *EffectSummary, r Region, pos token.Pos, desc string) {
	if prev, ok := s.Writes[r]; ok {
		// A direct site beats a mapped one as the representative.
		if !prev.Direct {
			s.Writes[r] = &WriteEffect{Region: r, Pos: pos, Direct: true,
				Path: []string{FuncDisplayName(s.Fn)}}
		}
		return
	}
	s.Writes[r] = &WriteEffect{Region: r, Pos: pos, Direct: true,
		Path: []string{FuncDisplayName(s.Fn)}}
}

const maxEffectPath = 12

func (e *Effects) addMappedWrite(s *EffectSummary, r Region, from *WriteEffect) {
	if _, ok := s.Writes[r]; ok {
		return
	}
	if len(from.Path) >= maxEffectPath {
		return
	}
	s.Writes[r] = &WriteEffect{Region: r, Pos: from.Pos,
		Path: append(append([]string{}, from.Path...), FuncDisplayName(s.Fn))}
}

// isPackageLevelVar reports whether v is a package-scope variable (not
// a field, parameter or local).
func isPackageLevelVar(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isProgramGlobal reports whether v is a package-level var declared by
// the program under analysis (the repository or a test fixture).
// Stdlib globals (binary.LittleEndian, os.Stdout) are not regions: the
// shared-state analyzers govern the program's own globals, and stdlib
// vars the program merely calls methods on would be pure noise.
func isProgramGlobal(v *types.Var) bool {
	if !isPackageLevelVar(v) {
		return false
	}
	path := v.Pkg().Path()
	return path == ModulePath ||
		strings.HasPrefix(path, ModulePath+"/") ||
		strings.HasPrefix(path, "fixture/")
}

// isMutableRef reports whether a value of type t lets its holder write
// someone else's storage: pointers, slices, maps and channels. Strings
// are immutable; interfaces and funcs are excluded deliberately —
// counting every error value handed to fmt/errors as a potential write
// would bury the real findings (the cost is missing a stdlib function
// that type-asserts an interface back to a pointer and mutates it,
// which none of the functions sim-critical code calls do).
func isMutableRef(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}
