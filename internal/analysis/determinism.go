package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags sources of run-to-run nondeterminism in
// simulation-critical code. The whole reproduction depends on virtual
// time being a pure function of the inputs (same platform + same guest
// image → identical cycle counts, the property timing-accurate
// simulators require), so sim packages must not:
//
//   - read the wall clock (time.Now, time.Since, ...): virtual time
//     comes from hw.Clock only;
//   - draw from math/rand's global source: it is seeded differently
//     across processes, and even a fixed seed hides an ordering
//     dependence (explicit rand.New(rand.NewSource(n)) is allowed);
//   - iterate a map with for-range: Go randomizes map iteration order
//     per run, so any state mutation or cycle charge inside the loop
//     body becomes order-dependent.
//
// Which packages are "simulation-critical" is the caller's policy (see
// DefaultSuite); the analyzer checks whatever packages it is given.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, and map iteration in sim-critical packages",
	run:  runDeterminism,
}

// wallClockFuncs are the time-package functions that observe or depend
// on host wall-clock time. Pure value constructors (time.Duration
// arithmetic, time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand package-level functions backed by
// the process-global, possibly auto-seeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

func runDeterminism(pass *Pass) {
	pass.inspect(func(pkg *Package, _ *ast.File, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := pkg.Info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on an explicitly
			// constructed rand.Rand (seeded by the caller) are fine.
			if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					pass.Reportf(n.Pos(), "wall-clock use time.%s in sim-critical package %s (virtual time must come from hw.Clock)", obj.Name(), pkg.Path)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[obj.Name()] {
					pass.Reportf(n.Pos(), "global math/rand source rand.%s in sim-critical package %s (use an explicitly seeded rand.New)", obj.Name(), pkg.Path)
				}
			}
		case *ast.RangeStmt:
			tv, ok := pkg.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(), "for-range over map type %s in sim-critical package %s (iteration order is randomized; iterate a sorted slice)", tv.Type, pkg.Path)
			}
		}
		return true
	})
}
