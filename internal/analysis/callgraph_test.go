package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

// TestCallGraphResolution checks the two resolution modes the
// downstream analyzers rely on: interface calls fan out to every
// implementation in the program (chargecheck's reachability walks
// these edges), and method / function values referenced without an
// immediate call still produce edges (callbacks registered now, run
// later).
func TestCallGraphResolution(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", "callgraph")
	prog, err := LoadDirs(root, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	cg := prog.CallGraph()

	nodeByName := func(name string) *FuncNode {
		t.Helper()
		for _, n := range cg.Ordered {
			if FuncDisplayName(n.Fn) == name {
				return n
			}
		}
		t.Fatalf("function %s not in call graph", name)
		return nil
	}
	callees := func(n *FuncNode) map[string]bool {
		out := make(map[string]bool)
		for _, e := range n.Out {
			out[FuncDisplayName(e.Callee)] = true
		}
		return out
	}

	// Interface call: dispatch invokes Device.Tick, which must resolve
	// to both concrete implementations.
	got := callees(nodeByName("callgraph.dispatch"))
	for _, want := range []string{"callgraph.PIT.Tick", "callgraph.Serial.Tick"} {
		if !got[want] {
			t.Errorf("dispatch: missing interface-call edge to %s (have %v)", want, got)
		}
	}

	// Method value: f := p.Tick; f() must keep the edge to PIT.Tick.
	if got := callees(nodeByName("callgraph.viaValue")); !got["callgraph.PIT.Tick"] {
		t.Errorf("viaValue: missing method-value edge to PIT.Tick (have %v)", got)
	}

	// Function value passed as an argument: referencing helper is an
	// edge even though root never calls it directly.
	if got := callees(nodeByName("callgraph.root")); !got["callgraph.helper"] {
		t.Errorf("root: missing function-value edge to helper (have %v)", got)
	}

	// Reachability: a predicate on Tick must mark dispatch and viaValue
	// (they can reach a Tick implementation) but not helper.
	reach := cg.ReachesAny(func(fn *types.Func) bool {
		return fn.Name() == "Tick"
	})
	for _, name := range []string{"callgraph.dispatch", "callgraph.viaValue"} {
		if !reach[nodeByName(name).Fn] {
			t.Errorf("ReachesAny: %s should reach Tick", name)
		}
	}
	if reach[nodeByName("callgraph.helper").Fn] {
		t.Error("ReachesAny: helper should not reach Tick")
	}

	// Determinism: Ordered must be sorted by position.
	for i := 1; i < len(cg.Ordered); i++ {
		a, b := cg.Ordered[i-1], cg.Ordered[i]
		af := prog.Fset.Position(a.Decl.Pos())
		bf := prog.Fset.Position(b.Decl.Pos())
		if af.Filename > bf.Filename || (af.Filename == bf.Filename && af.Offset > bf.Offset) {
			t.Errorf("Ordered not sorted: %s before %s", FuncDisplayName(a.Fn), FuncDisplayName(b.Fn))
		}
	}
}
