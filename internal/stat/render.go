package stat

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// JSON renders the snapshot as indented JSON (struct-based, fixed field
// order, metrics name-sorted — deterministic).
func (d *Data) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// OpenMetrics renders the snapshot in the OpenMetrics text format:
// counters as `family_total`, gauges and samples as plain gauges,
// histograms as cumulative `_bucket{le=...}` series plus `_count` and
// `_sum`. Epoch cells are not rendered here (they are a simulation
// concept); use JSON or the nova-stat epochs view for the time series.
// Percentiles are deliberately NOT emitted here — OpenMetrics
// histograms carry buckets only, and scrapers derive quantiles
// themselves — keeping this output byte-compatible with older
// consumers; use `nova-stat report` (HistogramData.Quantile) for
// p50/p99/p999.
func (d *Data) OpenMetrics() []byte {
	var buf bytes.Buffer
	lastFamily := ""
	for i := range d.Metrics {
		m := &d.Metrics[i]
		family, labels := m.Family()
		if family != lastFamily {
			switch m.Kind {
			case "counter":
				fmt.Fprintf(&buf, "# TYPE %s counter\n", family)
			case "histogram":
				fmt.Fprintf(&buf, "# TYPE %s histogram\n", family)
			default:
				fmt.Fprintf(&buf, "# TYPE %s gauge\n", family)
			}
			lastFamily = family
		}
		switch m.Kind {
		case "counter":
			fmt.Fprintf(&buf, "%s_total%s %d\n", family, labels, m.Total)
		case "histogram":
			fmt.Fprintf(&buf, "%s_count%s %d\n", family, labels, m.Total)
			if m.Hist != nil {
				fmt.Fprintf(&buf, "%s_sum%s %d\n", family, labels, m.Hist.Sum)
				cum := uint64(0)
				for _, b := range m.Hist.Buckets {
					cum += b.Count
					fmt.Fprintf(&buf, "%s_bucket%s %d\n", family,
						withLabel(labels, "le", fmt.Sprintf("%d", b.Hi)), cum)
				}
				fmt.Fprintf(&buf, "%s_bucket%s %d\n", family,
					withLabel(labels, "le", "+Inf"), m.Hist.Count)
			}
		default: // gauge, sample
			fmt.Fprintf(&buf, "%s%s %d\n", family, labels, m.Total)
		}
	}
	buf.WriteString("# EOF\n")
	return buf.Bytes()
}

// withLabel merges one extra label into an existing `{...}` label block
// (or creates the block).
func withLabel(labels, key, value string) string {
	extra := key + `="` + value + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}
