// Package stat is the aggregate resource-accounting layer of the
// simulation: a deterministic metrics registry of counters, gauges and
// log2 histograms, bucketed into virtual-time epochs, threaded through
// the microhypervisor, the user-level VMMs, the device servers and the
// hardware device models.
//
// The design contract is the same zero perturbation the trace and prof
// layers obey: recording a metric must never charge simulated cycles,
// mutate guest-visible state, or read the wall clock. Timestamps are
// virtual time (hw.Cycles) from the per-CPU clocks the simulation
// already maintains, so a run with stats enabled produces bit-identical
// cycle totals to a run without, and two stats-enabled runs of the same
// guest produce byte-identical encoded snapshots. The nova-vet
// `tracepure` analyzer enforces this statically; the A/B identity test
// in internal/guest enforces it end to end.
//
// Counters accumulate into per-epoch cells (epoch = virtual time /
// EpochLen), giving every run a bit-identical time series without any
// background flusher: cells are appended as time advances, and a value
// arriving from a CPU whose clock lags another is inserted at its
// ordered position. Maps are used as lookup indexes only; every
// emission and encoding path walks slices in a deterministic order.
package stat

import (
	"sort"
	"strings"

	"nova/internal/hw"
	"nova/internal/trace"
)

// Kind classifies a metric.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically accumulating count; epochs carry
	// the per-epoch increments.
	KindCounter Kind = iota
	// KindGauge is a sampled level (queue depth …); epochs carry the
	// per-epoch maximum.
	KindGauge
	// KindHistogram is a log2 latency histogram (the trace package's
	// bucket math); epochs carry the per-epoch observation counts.
	KindHistogram
	// KindSample is a pull-mode gauge read once at snapshot time from a
	// registered sampler (live object counts, device totals).
	KindSample
)

// kindNames is indexed by Kind for the encoded form.
var kindNames = [...]string{"counter", "gauge", "histogram", "sample"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// EpochCell is one epoch's worth of a metric: the epoch index (virtual
// time / EpochLen) and the value accumulated within it.
type EpochCell struct {
	Epoch uint64 `json:"e"`
	Value uint64 `json:"v"`
}

// Metric is one named time series. All mutation goes through the
// nil-safe handle types (Counter, Gauge, Histogram); the fields are
// read by Snapshot.
type Metric struct {
	name     string
	kind     Kind
	epochLen hw.Cycles

	total uint64 // counters: sum; gauges: last set value; histograms: observation count
	max   uint64 // gauges only: maximum ever set
	hist  trace.Histogram

	epochs []EpochCell // ordered by Epoch, ascending
}

// bump accumulates n into the cell for now's epoch. Cells stay ordered:
// the common case appends to or increments the last cell; a timestamp
// from a lagging CPU clock walks back to its ordered position.
func (m *Metric) bump(now hw.Cycles, n uint64, isMax bool) {
	var e uint64
	if m.epochLen > 0 {
		e = uint64(now / m.epochLen)
	}
	i := len(m.epochs) - 1
	for i >= 0 && m.epochs[i].Epoch > e {
		i--
	}
	if i >= 0 && m.epochs[i].Epoch == e {
		if isMax {
			if n > m.epochs[i].Value {
				m.epochs[i].Value = n
			}
		} else {
			m.epochs[i].Value += n
		}
		return
	}
	m.epochs = append(m.epochs, EpochCell{})
	copy(m.epochs[i+2:], m.epochs[i+1:])
	m.epochs[i+1] = EpochCell{Epoch: e, Value: n}
}

// Counter is a nil-safe handle on a counter metric. The zero value is
// a no-op, so instrumented code needs no enablement checks.
type Counter struct{ m *Metric }

// Add accumulates n at virtual time now.
func (c Counter) Add(now hw.Cycles, n uint64) {
	if c.m == nil {
		return
	}
	c.m.total += n
	c.m.bump(now, n, false)
}

// Gauge is a nil-safe handle on a gauge metric. The zero value is a
// no-op.
type Gauge struct{ m *Metric }

// Set records the level v at virtual time now. The epoch cell keeps
// the maximum level seen within the epoch.
func (g Gauge) Set(now hw.Cycles, v uint64) {
	if g.m == nil {
		return
	}
	g.m.total = v
	if v > g.m.max {
		g.m.max = v
	}
	g.m.bump(now, v, true)
}

// Histogram is a nil-safe handle on a log2 histogram metric. The zero
// value is a no-op.
type Histogram struct{ m *Metric }

// Observe records one value at virtual time now.
func (h Histogram) Observe(now hw.Cycles, v uint64) {
	if h.m == nil {
		return
	}
	h.m.total++
	h.m.hist.Observe(v)
	h.m.bump(now, 1, false)
}

// sampler is one pull-mode metric: a closure read at snapshot time.
type sampler struct {
	name string
	fn   func() uint64
}

// Meta describes the run that produced a snapshot.
type Meta struct {
	Model    string `json:"model"`
	FreqMHz  int    `json:"freq_mhz"`
	NumCPUs  int    `json:"num_cpus"`
	EpochLen uint64 `json:"epoch_len"`
}

// Registry is the metrics sink for one machine. All methods are
// nil-safe so instrumented code needs no enablement checks: a nil
// *Registry means stats are off and every call is a cheap no-op.
type Registry struct {
	Meta     Meta
	epochLen hw.Cycles

	metrics  []*Metric          // registration order
	index    map[string]*Metric // lookup only — never ranged
	samplers []sampler          // registration order
}

// DefaultEpochLen is the epoch length used when none is given: one
// million virtual cycles (~0.4 ms at the paper's 2.67 GHz).
const DefaultEpochLen hw.Cycles = 1_000_000

// New creates a registry with the given epoch length (<= 0 selects
// DefaultEpochLen).
func New(meta Meta, epochLen hw.Cycles) *Registry {
	if epochLen <= 0 {
		epochLen = DefaultEpochLen
	}
	meta.EpochLen = uint64(epochLen)
	return &Registry{
		Meta:     meta,
		epochLen: epochLen,
		index:    make(map[string]*Metric),
	}
}

// EpochLen returns the registry's epoch length in virtual cycles.
func (r *Registry) EpochLen() hw.Cycles {
	if r == nil {
		return 0
	}
	return r.epochLen
}

// metric returns the named metric, creating it with the given kind on
// first use. A name registered twice returns the same metric (the kind
// of the first registration wins).
func (r *Registry) metric(name string, kind Kind) *Metric {
	if m, ok := r.index[name]; ok {
		return m
	}
	m := &Metric{name: name, kind: kind, epochLen: r.epochLen}
	r.metrics = append(r.metrics, m)
	r.index[name] = m
	return m
}

// Counter returns a handle on the named counter, creating it on first
// use. On a nil registry the handle is a no-op.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{m: r.metric(name, KindCounter)}
}

// Gauge returns a handle on the named gauge.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{m: r.metric(name, KindGauge)}
}

// Histogram returns a handle on the named histogram.
func (r *Registry) Histogram(name string) Histogram {
	if r == nil {
		return Histogram{}
	}
	return Histogram{m: r.metric(name, KindHistogram)}
}

// Add accumulates n into the named counter at virtual time now: the
// convenience form for low-rate call sites that don't cache a handle.
func (r *Registry) Add(name string, now hw.Cycles, n uint64) {
	if r == nil {
		return
	}
	Counter{m: r.metric(name, KindCounter)}.Add(now, n)
}

// RegisterSampler registers a pull-mode metric: fn is invoked once per
// Snapshot and must be a pure read of host-side state (live object
// counts, device model totals). It must not charge cycles or mutate
// anything.
func (r *Registry) RegisterSampler(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.samplers = append(r.samplers, sampler{name: name, fn: fn})
}

// Name formats a metric name as family{k="v",...} from alternating
// key/value pairs. The convention keeps one flat, sortable name per
// series while staying parseable by the OpenMetrics renderer.
func Name(family string, kv ...string) string {
	if len(kv) < 2 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot captures the registry's current state: samplers are read,
// metrics are sorted by name, and all-zero counters and histograms are
// dropped (a vCPU registers a counter per exit reason; the reasons it
// never took would otherwise bloat every snapshot). The registry stays
// live — snapshotting does not reset anything.
func (r *Registry) Snapshot(finalCycles hw.Cycles) *Data {
	if r == nil {
		return nil
	}
	d := &Data{Meta: r.Meta, FinalCycles: uint64(finalCycles)}
	for _, m := range r.metrics {
		if (m.kind == KindCounter || m.kind == KindHistogram) && m.total == 0 {
			continue
		}
		md := MetricData{
			Name:   m.name,
			Kind:   m.kind.String(),
			Total:  m.total,
			Epochs: append([]EpochCell(nil), m.epochs...),
		}
		if m.kind == KindGauge {
			md.Max = m.max
		}
		if m.kind == KindHistogram {
			h := m.hist.Data()
			md.Hist = &h
		}
		d.Metrics = append(d.Metrics, md)
	}
	for _, s := range r.samplers {
		d.Metrics = append(d.Metrics, MetricData{
			Name:  s.name,
			Kind:  KindSample.String(),
			Total: s.fn(),
		})
	}
	sort.Slice(d.Metrics, func(i, j int) bool { return d.Metrics[i].Name < d.Metrics[j].Name })
	return d
}
