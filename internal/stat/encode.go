package stat

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"nova/internal/trace"
)

// magic identifies a serialized stats snapshot (version 1).
const magic = "NOVASTA1"

// MetricData is the serialized form of one metric.
type MetricData struct {
	Name   string               `json:"name"`
	Kind   string               `json:"kind"`
	Total  uint64               `json:"total"`
	Max    uint64               `json:"max,omitempty"`
	Hist   *trace.HistogramData `json:"hist,omitempty"`
	Epochs []EpochCell          `json:"epochs,omitempty"`
}

// Family splits the metric name into its family and label part:
// `kernel_vmexits{vm="vm0"}` → (`kernel_vmexits`, `{vm="vm0"}`).
func (m *MetricData) Family() (family, labels string) {
	if i := strings.IndexByte(m.Name, '{'); i >= 0 {
		return m.Name[:i], m.Name[i:]
	}
	return m.Name, ""
}

// Data is a decoded (or freshly snapshotted) stats file.
type Data struct {
	Meta        Meta         `json:"meta"`
	FinalCycles uint64       `json:"final_cycles"`
	Metrics     []MetricData `json:"metrics"` // sorted by name
}

// body is the second file section: everything but the meta.
type body struct {
	FinalCycles uint64       `json:"final_cycles"`
	Metrics     []MetricData `json:"metrics"`
}

// Encode serializes the snapshot: magic, meta JSON section, body JSON
// section (the trace package's length-prefixed framing). Struct-based
// JSON has a fixed field order and the metrics are name-sorted, so two
// snapshots of identical runs serialize to identical bytes.
func (d *Data) Encode() ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("stat: nil snapshot")
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	metaJSON, err := json.Marshal(d.Meta)
	if err != nil {
		return nil, err
	}
	trace.WriteSection(&buf, metaJSON)
	bodyJSON, err := json.Marshal(body{FinalCycles: d.FinalCycles, Metrics: d.Metrics})
	if err != nil {
		return nil, err
	}
	trace.WriteSection(&buf, bodyJSON)
	return buf.Bytes(), nil
}

// Decode parses a serialized stats snapshot.
func Decode(b []byte) (*Data, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("stat: bad magic (not a nova stats file)")
	}
	b = b[len(magic):]
	metaJSON, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("stat: meta: %w", err)
	}
	d := &Data{}
	if err := json.Unmarshal(metaJSON, &d.Meta); err != nil {
		return nil, fmt.Errorf("stat: meta: %w", err)
	}
	bodyJSON, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("stat: body: %w", err)
	}
	var bd body
	if err := json.Unmarshal(bodyJSON, &bd); err != nil {
		return nil, fmt.Errorf("stat: body: %w", err)
	}
	d.FinalCycles = bd.FinalCycles
	d.Metrics = bd.Metrics
	if len(b) != 0 {
		return nil, fmt.Errorf("stat: %d trailing bytes", len(b))
	}
	return d, nil
}
