package stat

import (
	"bytes"
	"strings"
	"testing"

	"nova/internal/hw"
)

func testMeta() Meta {
	return Meta{Model: "test", FreqMHz: 1000, NumCPUs: 1}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every call on a nil registry and on zero-value handles must be a
	// no-op, so instrumented code needs no enablement checks.
	r.Counter("a").Add(1, 1)
	r.Gauge("b").Set(2, 2)
	r.Histogram("c").Observe(3, 3)
	r.Add("d", 4, 4)
	r.RegisterSampler("e", func() uint64 { return 5 })
	if r.Snapshot(100) != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if r.EpochLen() != 0 {
		t.Fatal("nil registry epoch length should be 0")
	}
	var c Counter
	var g Gauge
	var h Histogram
	c.Add(1, 1)
	g.Set(1, 1)
	h.Observe(1, 1)
}

func TestEpochBucketing(t *testing.T) {
	r := New(testMeta(), 100)
	c := r.Counter("x")
	c.Add(10, 1)  // epoch 0
	c.Add(99, 2)  // epoch 0
	c.Add(100, 3) // epoch 1
	c.Add(350, 4) // epoch 3 (epoch 2 empty: no cell)
	d := r.Snapshot(400)
	if len(d.Metrics) != 1 {
		t.Fatalf("want 1 metric, got %d", len(d.Metrics))
	}
	m := d.Metrics[0]
	if m.Total != 10 {
		t.Errorf("total = %d, want 10", m.Total)
	}
	want := []EpochCell{{0, 3}, {1, 3}, {3, 4}}
	if len(m.Epochs) != len(want) {
		t.Fatalf("epochs = %v, want %v", m.Epochs, want)
	}
	for i, w := range want {
		if m.Epochs[i] != w {
			t.Errorf("epoch[%d] = %v, want %v", i, m.Epochs[i], w)
		}
	}
}

func TestEpochOutOfOrderInsert(t *testing.T) {
	// A lagging CPU clock delivers an earlier epoch after later ones
	// exist; the cell must land at its ordered position.
	r := New(testMeta(), 100)
	c := r.Counter("x")
	c.Add(500, 1) // epoch 5
	c.Add(150, 2) // epoch 1, arrives late
	c.Add(520, 3) // epoch 5 again
	c.Add(160, 4) // epoch 1 again, merges into the existing cell
	m := r.Snapshot(600).Metrics[0]
	want := []EpochCell{{1, 6}, {5, 4}}
	if len(m.Epochs) != len(want) {
		t.Fatalf("epochs = %v, want %v", m.Epochs, want)
	}
	for i, w := range want {
		if m.Epochs[i] != w {
			t.Errorf("epoch[%d] = %v, want %v", i, m.Epochs[i], w)
		}
	}
}

func TestGaugeEpochMax(t *testing.T) {
	r := New(testMeta(), 100)
	g := r.Gauge("depth")
	g.Set(10, 3)
	g.Set(20, 7)
	g.Set(30, 5)
	g.Set(150, 2)
	m := r.Snapshot(200).Metrics[0]
	if m.Total != 2 || m.Max != 7 {
		t.Errorf("last=%d max=%d, want 2/7", m.Total, m.Max)
	}
	want := []EpochCell{{0, 7}, {1, 2}}
	for i, w := range want {
		if m.Epochs[i] != w {
			t.Errorf("epoch[%d] = %v, want %v", i, m.Epochs[i], w)
		}
	}
}

func TestZeroCountersDropped(t *testing.T) {
	r := New(testMeta(), 100)
	r.Counter("never")
	r.Histogram("empty")
	g := r.Gauge("level") // gauges stay even at zero
	g.Set(1, 0)
	d := r.Snapshot(10)
	if len(d.Metrics) != 1 || d.Metrics[0].Name != "level" {
		t.Fatalf("want only the gauge, got %+v", d.Metrics)
	}
}

func TestSamplers(t *testing.T) {
	r := New(testMeta(), 100)
	live := uint64(7)
	r.RegisterSampler("objects", func() uint64 { return live })
	d := r.Snapshot(10)
	if len(d.Metrics) != 1 || d.Metrics[0].Kind != "sample" || d.Metrics[0].Total != 7 {
		t.Fatalf("sampler not captured: %+v", d.Metrics)
	}
	live = 9
	if got := r.Snapshot(20).Metrics[0].Total; got != 9 {
		t.Errorf("sampler re-read = %d, want 9", got)
	}
}

func TestName(t *testing.T) {
	if got := Name("fam"); got != "fam" {
		t.Errorf("Name(fam) = %q", got)
	}
	if got := Name("fam", "vm", "vm0", "reason", "io"); got != `fam{vm="vm0",reason="io"}` {
		t.Errorf("Name = %q", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := New(testMeta(), 100)
	r.Counter(Name("exits", "vm", "a")).Add(10, 3)
	r.Gauge("depth").Set(20, 5)
	r.Histogram("lat").Observe(30, 1234)
	r.RegisterSampler("objs", func() uint64 { return 2 })
	d := r.Snapshot(500)
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalCycles != 500 || got.Meta.EpochLen != 100 || len(got.Metrics) != 4 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("re-encode is not byte-identical")
	}
	// Corrupted inputs decline instead of panicking.
	if _, err := Decode(b[:4]); err == nil {
		t.Error("truncated input accepted")
	}
	if _, err := Decode(append([]byte("XXXXXXXX"), b[8:]...)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(append(b, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDoubleSnapshotByteIdentity(t *testing.T) {
	build := func() []byte {
		r := New(testMeta(), 64)
		for i := 0; i < 100; i++ {
			r.Add(Name("c", "i", string(rune('a'+i%5))), hw.Cycles(i*13), uint64(i))
		}
		r.Histogram("h").Observe(700, 42)
		b, err := r.Snapshot(1300).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical runs encoded differently")
	}
}

func TestOpenMetrics(t *testing.T) {
	r := New(testMeta(), 100)
	r.Counter(Name("exits", "vm", "a")).Add(10, 3)
	r.Gauge("depth").Set(20, 5)
	r.Histogram("lat").Observe(30, 3)
	out := string(r.Snapshot(100).OpenMetrics())
	for _, want := range []string{
		"# TYPE exits counter",
		`exits_total{vm="a"} 3`,
		"# TYPE depth gauge",
		"depth 5",
		"# TYPE lat histogram",
		"lat_count 1",
		"lat_sum 3",
		`lat_bucket{le="+Inf"} 1`,
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
}
