// Virtual appliance scenario (§4, §4.2): a security-critical appliance
// (think: microkernel + online-banking app) runs in one VM, a big
// legacy OS in another — each with its *own* VMM. The legacy guest then
// triggers a bug in its virtual-machine monitor. In a monolithic
// hypervisor that attack would compromise every guest; in NOVA the
// kernel contains the damage to the attacker's own VM while the
// appliance keeps running.
package main

import (
	"fmt"
	"log"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/vmm"
	"nova/internal/x86"
)

func main() {
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 128 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)

	newVM := func(name string) *vmm.VMM {
		base, err := root.AllocPages(name, 512)
		check(err)
		m, err := vmm.New(k, vmm.Config{
			Name: name, MemPages: 512, BasePage: base, CPU: 0,
			Mode: hypervisor.ModeEPT,
		})
		check(err)
		return m
	}

	// The banking appliance: a small special-purpose image that
	// periodically "processes transactions" (increments a ledger) and
	// reports over its serial port.
	appliance := newVM("banking-appliance")
	check(appliance.LoadImage(0x8000, x86.MustAssemble(`bits 16
org 0x8000
	mov ecx, 50
tx_loop:
	mov eax, [0x6000]
	inc eax
	mov [0x6000], eax   ; the ledger
	dec ecx
	jnz tx_loop
	mov dx, 0x3f8
	mov al, '$'
	out dx, al
	mov dword [0x6004], 0x0badc0de + 0x33f21 ; done marker
	cli
	hlt`)))

	// The legacy OS: compromised by its user, it attacks the x86
	// interface of its OWN virtual-machine monitor. We model the VMM
	// bug with the sabotage hook: the next intercepted port access
	// crashes the handler.
	legacy := newVM("legacy-os")
	legacy.SabotageIO = true
	check(legacy.LoadImage(0x8000, x86.MustAssemble(`bits 16
org 0x8000
	; malicious guest: poke at I/O until the VMM falls over
	mov dx, 0x3f8
	mov al, 'X'
	out dx, al
	hlt
spin:
	jmp spin`)))

	for _, m := range []*vmm.VMM{appliance, legacy} {
		st := &m.EC.VCPU.State
		st.Reset()
		st.EIP = 0x8000
		check(m.Start(10, 1_000_000))
	}

	k.Run(k.Now() + 200_000_000)

	fmt.Println("--- attack outcome ---")
	fmt.Printf("kernel killed: %v\n", k.Killed)
	if len(k.Killed) != 1 {
		log.Fatalf("expected exactly the legacy VM to die, got %v", k.Killed)
	}
	ledger := plat.Mem.Read32(hw.PhysAddr(uint64(root.Allocations()["banking-appliance"][0])<<12 + 0x6000))
	done := plat.Mem.Read32(hw.PhysAddr(uint64(root.Allocations()["banking-appliance"][0])<<12 + 0x6004))
	fmt.Printf("appliance ledger: %d transactions, done marker %#x, console %q\n",
		ledger, done, appliance.Console())
	if ledger != 50 || done != 0x0badc0de+0x33f21 {
		log.Fatal("the appliance was affected by the attack!")
	}
	fmt.Println("the compromised VMM impaired only its own VM; the appliance finished untouched (§4.2)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
