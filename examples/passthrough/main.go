// Direct device assignment with IOMMU protection (§4.2 "Device-Driver
// Attacks", §8.2): the platform's SATA controller is assigned straight
// to a guest, which drives it with the same driver a native OS would
// use. The IOMMU confines the device's DMA to the VM's own memory —
// shown by the device completing real transfers for the guest while a
// DMA probe aimed at hypervisor memory is refused.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nova/internal/guest"
	"nova/internal/hw"
)

func main() {
	img := guest.MustBuild(guest.DiskChecksumKernel())
	r, err := guest.NewRunner(guest.RunnerConfig{
		Model: hw.BLM, Mode: guest.ModeDirect, UseVPID: true,
	}, img)
	check(err)

	params := make([]byte, 12)
	binary.LittleEndian.PutUint32(params[0:], 8)
	binary.LittleEndian.PutUint32(params[4:], 10)
	binary.LittleEndian.PutUint32(params[8:], 777)
	r.WriteGuest(guest.ParamBase, params)

	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		log.Fatal(err)
	}

	// The guest's checksum matches the physical media: the passthrough
	// path carried real data.
	want := checksum(r.Plat.AHCI.Disk(), 777, 10*8)
	got := r.ReadGuest32(guest.ParamBase + 12)
	fmt.Printf("guest checksum over 10x4KiB at LBA 777: %#x (media: %#x)\n", got, want)
	if got != want {
		log.Fatal("passthrough data corrupted")
	}

	u := r.Plat.IOMMU
	fmt.Printf("IOMMU: %d translated DMA operations, %d blocked so far\n", u.DMAPasses, u.DMABlocks)

	// A compromised driver now aims the device at the hypervisor's own
	// memory (host-physical 0x1000 is inside the kernel's reserved
	// megabyte). The IOMMU domain only maps the VM's guest-physical
	// space, so the access is refused and logged.
	err = u.DMAWrite(hw.AHCIDeviceID, 0x40000000, []byte{0x90, 0x90, 0x90, 0x90})
	fmt.Printf("rogue DMA outside the VM's domain: %v\n", err)
	if err == nil {
		log.Fatal("the IOMMU let a rogue DMA through!")
	}
	// And an interrupt vector the device was never granted is blocked
	// by interrupt remapping.
	if u.RemapInterrupt(hw.AHCIDeviceID, 0xfe) {
		log.Fatal("interrupt remapping let a forbidden vector through")
	}
	fmt.Printf("IOMMU faults recorded: %d (the attack evidence)\n", len(u.Faults))

	v := r.VCPU()
	fmt.Printf("VM exits during the run: %d (no MMIO emulation: %d ept-violations) — interrupt virtualization only\n",
		v.TotalExits(), v.Exits[0])
	fmt.Println("direct assignment worked; DMA and interrupts stayed confined (§4.2)")
}

func checksum(d *hw.Disk, lba uint64, sectors int) uint32 {
	buf := make([]byte, sectors*hw.SectorSize)
	if err := d.ReadSectors(lba, sectors, buf); err != nil {
		log.Fatal(err)
	}
	var sum uint32
	for i := 0; i < len(buf); i += 4 {
		sum += binary.LittleEndian.Uint32(buf[i:])
	}
	return sum
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
