// Quickstart: build the NOVA stack from its public pieces — platform,
// microhypervisor, root partition manager — then exercise the two things
// everything else is made of: capability-based IPC between protection
// domains, and a virtual machine running real guest code.
package main

import (
	"fmt"
	"log"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/vmm"
	"nova/internal/x86"
)

func main() {
	// 1. The platform: a simulated Core i7 920 machine with 128 MiB of
	// RAM, an AHCI disk, a NIC and an IOMMU.
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 128 << 20})

	// 2. The microhypervisor: the only privileged component. At boot it
	// claims its own memory and the security-critical devices, then
	// hands everything else to the root partition manager.
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)

	// 3. Capability-based IPC: a server domain exposes a portal; the
	// client can call it only after receiving the capability.
	server, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "echo-server", false)
	check(err)
	client, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "client", false)
	check(err)

	srvSel := server.Caps.AllocSel()
	_, err = k.CreatePortal(server, srvSel, "echo", 1, 0, func(msg *hypervisor.UTCB) error {
		for i, w := range msg.Words {
			msg.Words[i] = w * 2 // the service: double every word
		}
		return nil
	})
	check(err)

	// Before delegation, the client cannot call.
	msg := &hypervisor.UTCB{Words: []uint64{1, 2, 3}}
	if err := k.Call(client, 100, msg); err == nil {
		log.Fatal("client called a portal it has no capability for!")
	}
	// Delegate with call rights only (least privilege), then call.
	check(server.Caps.Delegate(srvSel, client.Caps, 100, cap.RightCall))
	check(k.Call(client, 100, msg))
	fmt.Printf("IPC through the portal: [1 2 3] -> %v\n", msg.Words)

	// 4. A virtual machine: the root PM allocates guest memory, a
	// dedicated VMM wraps it, and the guest runs real x86 code.
	base, err := root.AllocPages("demo-vm", 512)
	check(err)
	m, err := vmm.New(k, vmm.Config{
		Name: "demo", MemPages: 512, BasePage: base, CPU: 0,
		Mode: hypervisor.ModeEPT,
	})
	check(err)

	guestCode := x86.MustAssemble(`bits 16
org 0x8000
	mov dx, 0x3f8        ; virtual serial port
	mov si, msg
next:
	mov al, [si]
	cmp al, 0
	jz done
	out dx, al
	inc si
	jmp next
done:
	mov eax, 1
	cpuid                ; ask the VMM who we are
	mov [0x6000], ebx
	cli
	hlt
msg:
	db "hello from guest mode", 0`)
	check(m.LoadImage(0x8000, guestCode))
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = 0x8000
	check(m.Start(10, 10_000_000))

	k.Run(k.Now() + 100_000_000)

	fmt.Printf("guest console: %q\n", m.Console())
	v := m.EC.VCPU
	fmt.Printf("guest took %d VM exits (%d port I/O, %d cpuid, %d hlt)\n",
		v.TotalExits(), v.Exits[x86.ExitIO], v.Exits[x86.ExitCPUID], v.Exits[x86.ExitHLT])
	fmt.Printf("simulated time: %.3f ms on a %s\n",
		plat.Cost.CyclesToSeconds(k.Now())*1000, plat.Cost.Name)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
