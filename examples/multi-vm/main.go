// Multiple VMs sharing one disk server (§4.2 "VMM Attacks", §7.3): each
// virtual machine has a dedicated VMM; the disk server gives every VMM
// its own communication channel and throttles clients that flood it.
// All three guests read different regions of the same physical disk
// through their virtual AHCI controllers concurrently, and each
// checksum is verified against the media.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"

	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/vmm"
)

func main() {
	statsFile := flag.String("stats", "", "write a resource-accounting snapshot (view with nova-stat)")
	flag.Parse()

	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 256 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)
	ds, err := root.StartDiskServer()
	check(err)
	if *statsFile != "" {
		k.AttachStats(0) // per-VM attribution; 0 = default epoch length
	}
	k.StartSchedulingTimer(667)

	img := guest.MustBuild(guest.DiskChecksumKernel())
	type vminfo struct {
		m    *vmm.VMM
		base uint32
		lba  uint32
	}
	var vms []vminfo
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("vm%d", i)
		base, err := root.AllocPages(name, 1024)
		check(err)
		m, err := vmm.New(k, vmm.Config{
			Name: name, MemPages: 1024, BasePage: base, CPU: 0,
			Mode: hypervisor.ModeEPT, DiskServer: ds, BootDisk: plat.AHCI.Disk(),
		})
		check(err)
		check(m.LoadImage(guest.Entry, img))
		lba := uint32(10000 + i*5000)
		params := make([]byte, 12)
		binary.LittleEndian.PutUint32(params[0:], 8)  // 4 KiB blocks
		binary.LittleEndian.PutUint32(params[4:], 12) // 12 requests
		binary.LittleEndian.PutUint32(params[8:], lba)
		check(m.GuestWrite(guest.ParamBase, params))
		st := &m.EC.VCPU.State
		st.Reset()
		st.EIP = guest.Entry
		check(m.Start(10, 2_000_000))
		vms = append(vms, vminfo{m: m, base: base, lba: lba})
	}

	// Run until every guest publishes its completion marker.
	deadline := k.Now() + 4_000_000_000
	for k.Now() < deadline {
		k.Run(k.Now() + 2_000_000)
		done := 0
		for _, v := range vms {
			if plat.Mem.Read32(hw.PhysAddr(uint64(v.base)<<12+guest.MarkerAddr)) == guest.MarkerDone {
				done++
			}
		}
		if done == len(vms) {
			break
		}
	}

	fmt.Println("--- results ---")
	for i, v := range vms {
		got := plat.Mem.Read32(hw.PhysAddr(uint64(v.base)<<12 + guest.ParamBase + 12))
		want := checksum(plat.AHCI.Disk(), uint64(v.lba), 12*8)
		status := "OK"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("vm%d: read 12x4KiB from LBA %d, checksum %#x (%s)\n", i, v.lba, got, status)
		if got != want {
			log.Fatal("data corruption across shared disk server")
		}
	}
	fmt.Printf("disk server: %d requests over %d dedicated channels, %d IRQs, throttled %d\n",
		ds.Stats.Requests, 3, ds.Stats.IRQs, ds.Stats.Throttled)
	fmt.Printf("host controller: %d commands, %d bytes DMA\n",
		plat.AHCI.Stats.Commands, plat.AHCI.Stats.DMABytes)

	if *statsFile != "" {
		b, err := k.Stat.Snapshot(k.Now()).Encode()
		check(err)
		check(os.WriteFile(*statsFile, b, 0o644))
		fmt.Printf("stats: %s (try: nova-stat report -filter kernel_vmexits %s)\n", *statsFile, *statsFile)
	}
}

func checksum(d *hw.Disk, lba uint64, sectors int) uint32 {
	buf := make([]byte, sectors*hw.SectorSize)
	if err := d.ReadSectors(lba, sectors, buf); err != nil {
		log.Fatal(err)
	}
	var sum uint32
	for i := 0; i < len(buf); i += 4 {
		sum += binary.LittleEndian.Uint32(buf[i:])
	}
	return sum
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
