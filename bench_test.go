package nova

// One testing.B benchmark per paper table/figure, plus substrate
// benchmarks for the simulator itself. Each reports the *simulated*
// cycle cost as a custom metric (sim-cycles/op) next to Go wall time.

import (
	"encoding/binary"
	"testing"

	"nova/internal/bench"
	"nova/internal/cap"
	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/tcb"
	"nova/internal/x86"
)

// BenchmarkFig1TCBCount measures the live TCB line count of Figure 1.
func BenchmarkFig1TCBCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tcb.CountRepo("."); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScale is a minimal workload for per-iteration figure runs.
func benchScale() bench.Scale {
	return bench.Scale{Name: "bench", Slices: 4, CachePages: 128, PrivPages: 8,
		FillerIter: 4000, DiskRequests: 4, Packets: 30}
}

// runCompileOnce executes one small compile-workload run and returns
// its simulated duration.
func runCompileOnce(b *testing.B, mode guest.Mode) hw.Cycles {
	b.Helper()
	img := guest.MustBuild(guest.CompileKernel(667))
	cfg := guest.RunnerConfig{Model: hw.BLM, Mode: mode, UseVPID: true, HostLargePages: true}
	r, err := guest.NewRunner(cfg, img)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	params := make([]byte, 24)
	binary.LittleEndian.PutUint32(params[0:], uint32(sc.Slices))
	binary.LittleEndian.PutUint32(params[4:], uint32(sc.CachePages))
	binary.LittleEndian.PutUint32(params[8:], uint32(sc.PrivPages))
	binary.LittleEndian.PutUint32(params[12:], uint32(sc.FillerIter))
	r.WriteGuest(guest.ParamBase, params)
	cy, err := r.RunUntilDone(1 << 40)
	if err != nil {
		b.Fatal(err)
	}
	return cy
}

// BenchmarkFig5CompileNative is the Figure 5 baseline configuration.
func BenchmarkFig5CompileNative(b *testing.B) {
	var cy hw.Cycles
	for i := 0; i < b.N; i++ {
		cy = runCompileOnce(b, guest.ModeNative)
	}
	b.ReportMetric(float64(cy), "sim-cycles/op")
}

// BenchmarkFig5CompileEPT is the Figure 5 NOVA EPT+VPID configuration.
func BenchmarkFig5CompileEPT(b *testing.B) {
	var cy hw.Cycles
	for i := 0; i < b.N; i++ {
		cy = runCompileOnce(b, guest.ModeVirtEPT)
	}
	b.ReportMetric(float64(cy), "sim-cycles/op")
}

// BenchmarkFig5CompileVTLB is the Figure 5 shadow-paging configuration.
func BenchmarkFig5CompileVTLB(b *testing.B) {
	var cy hw.Cycles
	for i := 0; i < b.N; i++ {
		cy = runCompileOnce(b, guest.ModeVirtVTLB)
	}
	b.ReportMetric(float64(cy), "sim-cycles/op")
}

// BenchmarkFig6DiskVirtualized runs the Figure 6 virtualized-disk path.
func BenchmarkFig6DiskVirtualized(b *testing.B) {
	img := guest.MustBuild(guest.DiskReadKernel())
	for i := 0; i < b.N; i++ {
		r, err := guest.NewRunner(guest.RunnerConfig{
			Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true, WithDiskServer: true,
		}, img)
		if err != nil {
			b.Fatal(err)
		}
		params := make([]byte, 24)
		binary.LittleEndian.PutUint32(params[0:], 8)
		binary.LittleEndian.PutUint32(params[4:], 4)
		binary.LittleEndian.PutUint32(params[8:], 4096)
		r.WriteGuest(guest.ParamBase, params)
		if _, err := r.RunUntilDone(1 << 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PacketReceive runs the Figure 7 direct-NIC path.
func BenchmarkFig7PacketReceive(b *testing.B) {
	img := guest.MustBuild(guest.UDPReceiveKernel())
	for i := 0; i < b.N; i++ {
		r, err := guest.NewRunner(guest.RunnerConfig{
			Model: hw.BLM, Mode: guest.ModeDirect, UseVPID: true,
		}, img)
		if err != nil {
			b.Fatal(err)
		}
		params := make([]byte, 4)
		binary.LittleEndian.PutUint32(params, 30)
		r.WriteGuest(guest.ParamBase, params)
		if err := r.RunUntilGuest32(guest.RxReadyAddr, 1, 1<<32); err != nil {
			b.Fatal(err)
		}
		src := hw.NewPacketSource(r.Plat.NIC, r.Plat.Queue, r.Clock().Now,
			r.Plat.Cost.FreqMHz, 1472, 124, 30)
		src.Start()
		if _, err := r.RunUntilDone(1 << 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8IPC measures one portal call+reply (the Figure 8
// primitive) and reports the simulated cycle cost.
func BenchmarkFig8IPC(b *testing.B) {
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 32 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "client", false)
	server, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "server", false)
	srvSel := server.Caps.AllocSel()
	if _, err := k.CreatePortal(server, srvSel, "bench", 0, 0,
		func(m *hypervisor.UTCB) error { return nil }); err != nil {
		b.Fatal(err)
	}
	if err := server.Caps.Delegate(srvSel, client.Caps, 100, cap.RightCall); err != nil {
		b.Fatal(err)
	}
	msg := &hypervisor.UTCB{Words: []uint64{1, 2}}
	start := k.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Call(client, 100, msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k.Now()-start)/float64(b.N), "sim-cycles/op")
}

// BenchmarkFig9VTLBMiss measures the shadow-paging miss path on the
// Core i7 with VPID (the Figure 9 primitive).
func BenchmarkFig9VTLBMiss(b *testing.B) {
	img := guest.MustBuild(guest.ComputeKernelWithSwitches(true, false, 8))
	r, err := guest.NewRunner(guest.RunnerConfig{
		Model: hw.BLM, Mode: guest.ModeVirtVTLB, UseVPID: true, SchedTimerHz: -1,
	}, img)
	if err != nil {
		b.Fatal(err)
	}
	params := make([]byte, 8)
	binary.LittleEndian.PutUint32(params[0:], 1<<30) // effectively endless
	binary.LittleEndian.PutUint32(params[4:], 256<<10)
	r.WriteGuest(guest.ParamBase, params)
	b.ResetTimer()
	fills0 := r.K.Stats.VTLBFills
	start := r.Clock().Now()
	for r.K.Stats.VTLBFills-fills0 < uint64(b.N) {
		r.K.Run(r.Clock().Now() + 500_000)
	}
	fills := r.K.Stats.VTLBFills - fills0
	b.ReportMetric(float64(r.Clock().Now()-start)/float64(fills), "sim-cycles/fill")
}

// BenchmarkTab2EventCollection runs the Table 2 collection path.
func BenchmarkTab2EventCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCompileOnce(b, guest.ModeVirtEPT)
	}
}

// ---- substrate benchmarks ----

// BenchmarkInterpreter measures raw guest instruction throughput.
func BenchmarkInterpreter(b *testing.B) {
	img := guest.MustBuild(guest.ComputeKernel(false, false, 0))
	r, err := guest.NewRunner(guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeNative}, img)
	if err != nil {
		b.Fatal(err)
	}
	params := make([]byte, 8)
	binary.LittleEndian.PutUint32(params[0:], 1<<30)
	binary.LittleEndian.PutUint32(params[4:], 64<<10)
	r.WriteGuest(guest.ParamBase, params)
	b.ResetTimer()
	ret0 := r.BM.Interp.InstRet
	for r.BM.Interp.InstRet-ret0 < uint64(b.N) {
		if err := r.BM.Run(r.Clock().Now() + 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BM.Interp.InstRet-ret0)/float64(b.N), "guest-insts/op")
}

// BenchmarkStepHotLoop measures the interpreter's single-step loop with
// the decoded-instruction cache enabled vs disabled (superblock fusion
// off in both, so the step path itself is what's timed). The two
// configurations must produce bit-identical simulation results
// (enforced by TestDecodeCacheABIdentity); only host ns/op may differ.
func BenchmarkStepHotLoop(b *testing.B) {
	for _, tc := range []struct {
		name     string
		disabled bool
	}{
		{"cached", false},
		{"uncached", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchHotLoop(b, guest.RunnerConfig{
				Model: hw.BLM, Mode: guest.ModeNative,
				DisableDecodeCache: tc.disabled, DisableSuperblocks: true,
			})
		})
	}
}

// BenchmarkSuperblockHotLoop measures fused superblock execution against
// the plain cached step path on the same hot loop. Both configurations
// must produce bit-identical simulation results (enforced by
// TestSuperblockABIdentity); only host ns/op may differ.
func BenchmarkSuperblockHotLoop(b *testing.B) {
	for _, tc := range []struct {
		name     string
		disabled bool
	}{
		{"fused", false},
		{"stepped", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchHotLoop(b, guest.RunnerConfig{
				Model: hw.BLM, Mode: guest.ModeNative, DisableSuperblocks: tc.disabled,
			})
		})
	}
}

// benchHotLoop drives the compute kernel's hot loop natively until b.N
// guest instructions have retired under the given interpreter config.
func benchHotLoop(b *testing.B, cfg guest.RunnerConfig) {
	img := guest.MustBuild(guest.ComputeKernel(false, false, 0))
	r, err := guest.NewRunner(cfg, img)
	if err != nil {
		b.Fatal(err)
	}
	params := make([]byte, 8)
	binary.LittleEndian.PutUint32(params[0:], 1<<30)
	binary.LittleEndian.PutUint32(params[4:], 64<<10)
	r.WriteGuest(guest.ParamBase, params)
	b.ResetTimer()
	ret0 := r.BM.Interp.InstRet
	for r.BM.Interp.InstRet-ret0 < uint64(b.N) {
		if err := r.BM.Run(r.Clock().Now() + 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BM.Interp.InstRet-ret0)/float64(b.N), "guest-insts/op")
}

// BenchmarkAssembler measures kernel image assembly.
func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		guest.MustBuild(guest.CompileKernel(667))
	}
}

// BenchmarkDecoder measures raw instruction decode throughput.
func BenchmarkDecoder(b *testing.B) {
	code := x86.MustAssemble("bits 32\nmov eax, [ebx+esi*4+16]\nadd eax, 42\njnz .x\n.x: nop")
	_ = code
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &byteSliceFetcher{b: code}
		for f.i < len(code) {
			if _, err := x86.Decode(f, true); err != nil {
				b.Fatal(err)
			}
		}
	}
}

type byteSliceFetcher struct {
	b []byte
	i int
}

func (s *byteSliceFetcher) FetchByte() (byte, error) {
	if s.i >= len(s.b) {
		return 0, x86.PageFault(uint32(s.i), false, false, false)
	}
	c := s.b[s.i]
	s.i++
	return c, nil
}
