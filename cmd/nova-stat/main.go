// Command nova-stat renders a resource-accounting snapshot captured
// with `nova-run -stats` (or any program that calls AttachStats and
// writes the encoded snapshot). Four views:
//
//	nova-stat report run.stats               # summary table with rates
//	nova-stat report -filter vm0 run.stats   # only metrics naming vm0
//	nova-stat epochs -metric NAME run.stats  # one metric's virtual-time series
//	nova-stat json run.stats                 # full snapshot as JSON
//	nova-stat openmetrics run.stats          # OpenMetrics text format
//
// Everything printed derives from deterministic virtual-time data: two
// runs of the same workload produce identical reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"nova/internal/stat"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		fs := flag.NewFlagSet("report", flag.ExitOnError)
		filter := fs.String("filter", "", "only metrics whose name contains this substring")
		fs.Parse(os.Args[2:]) //nolint:errcheck
		report(load(fs), *filter)
	case "epochs":
		fs := flag.NewFlagSet("epochs", flag.ExitOnError)
		metric := fs.String("metric", "", "metric name (exact, including labels)")
		fs.Parse(os.Args[2:]) //nolint:errcheck
		epochs(load(fs), *metric)
	case "json":
		fs := flag.NewFlagSet("json", flag.ExitOnError)
		fs.Parse(os.Args[2:]) //nolint:errcheck
		b, err := load(fs).JSON()
		if err != nil {
			fail("%v", err)
		}
		os.Stdout.Write(b) //nolint:errcheck
	case "openmetrics":
		fs := flag.NewFlagSet("openmetrics", flag.ExitOnError)
		fs.Parse(os.Args[2:]) //nolint:errcheck
		os.Stdout.Write(load(fs).OpenMetrics()) //nolint:errcheck
	default:
		usage()
	}
}

func usage() {
	fail("usage: nova-stat report [-filter S] FILE | epochs -metric NAME FILE | json FILE | openmetrics FILE")
}

// load decodes the snapshot named by the flag set's one positional
// argument.
func load(fs *flag.FlagSet) *stat.Data {
	if fs.NArg() != 1 {
		usage()
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	d, err := stat.Decode(b)
	if err != nil {
		fail("%v", err)
	}
	return d
}

func report(d *stat.Data, filter string) {
	m := d.Meta
	seconds := float64(d.FinalCycles) / (float64(m.FreqMHz) * 1e6)
	fmt.Printf("stats: %s @ %d MHz, %d CPU(s), epoch length %d cycles\n",
		m.Model, m.FreqMHz, m.NumCPUs, m.EpochLen)
	fmt.Printf("run: %d virtual cycles = %.3f ms simulated time\n\n",
		d.FinalCycles, seconds*1000)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "METRIC\tKIND\tTOTAL\tRATE/SEC\tDETAIL")
	shown := 0
	for i := range d.Metrics {
		md := &d.Metrics[i]
		if filter != "" && !strings.Contains(md.Name, filter) {
			continue
		}
		shown++
		rate := "-"
		if seconds > 0 && (md.Kind == "counter" || md.Kind == "histogram") {
			rate = fmt.Sprintf("%.1f", float64(md.Total)/seconds)
		}
		detail := ""
		switch {
		case md.Kind == "gauge":
			detail = fmt.Sprintf("max %d", md.Max)
		case md.Hist != nil && md.Hist.Count > 0:
			h := md.Hist
			// p50/p99/p999 are nearest-rank quantiles from the log2
			// buckets: exact ranks, bucket-upper-bound values.
			detail = fmt.Sprintf("avg %d cycles, min %d, p50 %d, p99 %d, p999 %d, max %d",
				h.Sum/h.Count, h.Min,
				h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n", md.Name, md.Kind, md.Total, rate, detail)
	}
	w.Flush() //nolint:errcheck
	if shown == 0 {
		fmt.Printf("no metrics match %q\n", filter)
	}
}

// epochs prints one metric's virtual-time series, one line per epoch
// cell with its cycle window.
func epochs(d *stat.Data, name string) {
	if name == "" {
		fail("epochs: -metric NAME is required")
	}
	for i := range d.Metrics {
		md := &d.Metrics[i]
		if md.Name != name {
			continue
		}
		fmt.Printf("%s (%s): %d total over %d epoch(s)\n", md.Name, md.Kind, md.Total, len(md.Epochs))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "EPOCH\tCYCLES\tVALUE")
		for _, c := range md.Epochs {
			lo := c.Epoch * d.Meta.EpochLen
			fmt.Fprintf(w, "%d\t[%d,%d)\t%d\n", c.Epoch, lo, lo+d.Meta.EpochLen, c.Value)
		}
		w.Flush() //nolint:errcheck
		return
	}
	fail("epochs: no metric named %q (try `nova-stat report` to list names)", name)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
