// Command nova-trace renders a trace file captured with
// `nova-run -trace` (or any other tracer user). Three views:
//
//	nova-trace run.trace                  # textual timeline
//	nova-trace -format attrib run.trace   # Figure 8/9 cost attribution
//	nova-trace -format chrome run.trace   # Chrome trace_event JSON
//	nova-trace -format metrics run.trace  # counters and histograms
//
// The chrome output loads into chrome://tracing or Perfetto; VM
// exit-to-resume spans become complete ("X") events, everything else an
// instant event on its CPU's track.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"nova/internal/trace"
)

func main() {
	format := flag.String("format", "timeline", "timeline|attrib|chrome|metrics")
	limit := flag.Int("limit", 0, "print at most N timeline events (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: nova-trace [-format timeline|attrib|chrome|metrics] FILE")
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	d, err := trace.Decode(b)
	if err != nil {
		fail("%v", err)
	}
	switch *format {
	case "timeline":
		timeline(d, *limit)
	case "attrib":
		warnTruncation(d)
		attrib(d)
	case "chrome":
		warnTruncation(d)
		chrome(d)
	case "metrics":
		warnTruncation(d)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(d.Metrics) //nolint:errcheck
	default:
		fail("unknown format %q", *format)
	}
}

// warnTruncation prints exactly one stderr notice per CPU whose ring
// wrapped: event-derived views (attrib spans, chrome timeline) then
// cover only the tail of the run, though the counters and histograms in
// the metrics section still cover everything. The overwrite counts are
// record-granular (one per overwritten record, not per emission call);
// the ring headers and the metrics section report the same counter, so
// take the max rather than warning from each source separately.
func warnTruncation(d *trace.TraceData) {
	over := make([]uint64, len(d.Overwritten))
	copy(over, d.Overwritten)
	for _, r := range d.Metrics.Rings {
		if r.CPU >= 0 && r.CPU < len(over) && r.Overwritten > over[r.CPU] {
			over[r.CPU] = r.Overwritten
		}
	}
	for cpu, n := range over {
		if n > 0 {
			fmt.Fprintf(os.Stderr,
				"nova-trace: warning: cpu%d ring overwrote %d events; event-derived output covers only the tail of the run (raise -trace-capacity)\n",
				cpu, n)
		}
	}
}

// kindName resolves a kind through the trace's own name table, so the
// renderer keeps working on traces from other tracer versions.
func kindName(d *trace.TraceData, k trace.Kind) string {
	if int(k) < len(d.Meta.KindNames) {
		return d.Meta.KindNames[k]
	}
	return fmt.Sprintf("kind-%d", k)
}

func exitName(d *trace.TraceData, r uint64) string {
	if int(r) < len(d.Meta.ExitReasons) {
		return d.Meta.ExitReasons[r]
	}
	return fmt.Sprintf("reason-%d", r)
}

// detail renders one event's payload using the kind-specific argument
// meanings documented in the trace package.
func detail(d *trace.TraceData, e trace.Event) string {
	switch e.Kind {
	case trace.KindVMExit:
		s := fmt.Sprintf("reason=%s eip=%#x ec=%d", exitName(d, e.A0), e.A1, e.A2)
		if e.A3 != 0 {
			s += fmt.Sprintf(" vector=%#x", e.A3)
		}
		return s
	case trace.KindVMResume:
		return fmt.Sprintf("reason=%s dur=%d ec=%d", exitName(d, e.A0), e.A1, e.A2)
	case trace.KindHypercall:
		return fmt.Sprintf("pd=%d", e.A0)
	case trace.KindIPCCall:
		return fmt.Sprintf("portal=%d words=%d cross-as=%d", e.A0, e.A1, e.A2)
	case trace.KindIPCReply:
		return fmt.Sprintf("portal=%d latency=%d cross-as=%d", e.A0, e.A1, e.A2)
	case trace.KindSchedDispatch:
		return fmt.Sprintf("ec=%d prio=%d wait=%d", e.A0, e.A1, e.A2)
	case trace.KindSemUp:
		return fmt.Sprintf("sem=%d woken=%d", e.A0, e.A1)
	case trace.KindSemDown:
		return fmt.Sprintf("sem=%d acquired=%d", e.A0, e.A1)
	case trace.KindRecall:
		return fmt.Sprintf("ec=%d", e.A0)
	case trace.KindInject:
		return fmt.Sprintf("vector=%#x ec=%d", e.A0, e.A1)
	case trace.KindHostIRQ:
		s := fmt.Sprintf("vector=%#x line=%d", e.A0, int64(e.A1))
		if e.A2 != ^uint64(0) {
			s += fmt.Sprintf(" preempted-ec=%d", e.A2)
		}
		return s
	case trace.KindVTLBFill:
		return fmt.Sprintf("va=%#x dur=%d ec=%d", e.A0, e.A1, e.A2)
	case trace.KindVTLBFlush:
		cause := fmt.Sprintf("cr%d", e.A0)
		if e.A0 == 0xff {
			cause = fmt.Sprintf("invlpg va=%#x", e.A2)
		}
		return fmt.Sprintf("cause=%s ec=%d", cause, e.A1)
	case trace.KindPIO:
		dir := "out"
		if e.A1 != 0 {
			dir = "in"
		}
		return fmt.Sprintf("port=%#x %s val=%#x size=%d", e.A0, dir, e.A2, e.A3)
	case trace.KindMMIO:
		dir := "write"
		if e.A1 != 0 {
			dir = "read"
		}
		return fmt.Sprintf("gpa=%#x %s val=%#x size=%d", e.A0, dir, e.A2, e.A3)
	case trace.KindEmulate:
		return fmt.Sprintf("eip=%#x", e.A0)
	case trace.KindBIOSCall:
		return fmt.Sprintf("int=%#x ah=%#x", e.A0, e.A1)
	case trace.KindDiskRequest, trace.KindDiskIssue:
		op := "read"
		if e.A0 == 2 {
			op = "write"
		}
		return fmt.Sprintf("op=%s lba=%d count=%d slot=%d", op, e.A1, e.A2, e.A3)
	case trace.KindDiskComplete:
		return fmt.Sprintf("slot=%d ok=%d", e.A0, e.A1)
	case trace.KindDiskDone:
		return fmt.Sprintf("cookie=%d ok=%d client=%d", e.A0, e.A1, e.A2)
	case trace.KindNetRX:
		return fmt.Sprintf("len=%d delivered=%d", e.A0, e.A1)
	default:
		return fmt.Sprintf("a0=%#x a1=%#x a2=%#x a3=%#x", e.A0, e.A1, e.A2, e.A3)
	}
}

func timeline(d *trace.TraceData, limit int) {
	fmt.Printf("trace: %s @ %d MHz, %d CPU(s), ring capacity %d\n",
		d.Meta.Model, d.Meta.FreqMHz, d.Meta.NumCPUs, d.Meta.RingCapacity)
	for cpu, over := range d.Overwritten {
		if over > 0 {
			fmt.Printf("cpu%d: %d events overwritten (ring wrapped; raise -trace-capacity)\n", cpu, over)
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "CYCLES\tCPU\tSEQ\tEVENT\tDETAIL")
	for i, e := range d.Events() {
		if limit > 0 && i >= limit {
			fmt.Fprintf(w, "...\t\t\t(%d more)\t\n", len(d.Events())-limit)
			break
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%s\n", e.Time, e.CPU, e.Seq, kindName(d, e.Kind), detail(d, e))
	}
	w.Flush() //nolint:errcheck
}

func attrib(d *trace.TraceData) {
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', tabwriter.AlignRight)

	fmt.Println("VM-exit cost attribution (cycles):")
	fmt.Fprintln(w, "reason\tcount\ttotal\thardware\tvmm\tkernel\tavg\t")
	rows := trace.ExitBreakdown(d)
	var count, total, hardware, vmm, kernel uint64
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			r.Reason, r.Count, r.Total, r.Hardware, r.VMM, r.Kernel, r.Total/r.Count)
		count += r.Count
		total += r.Total
		hardware += r.Hardware
		vmm += r.VMM
		kernel += r.Kernel
	}
	if count > 0 {
		fmt.Fprintf(w, "(all)\t%d\t%d\t%d\t%d\t%d\t%d\t\n", count, total, hardware, vmm, kernel, total/count)
	}
	w.Flush() //nolint:errcheck

	ipc := trace.ComputeIPCBreakdown(d)
	if ipc.SameCount+ipc.CrossCount > 0 {
		fmt.Println("\nIPC breakdown, one-way message transfer (Figure 8, cycles):")
		fmt.Fprintf(w, "entry+exit\t%d\t\n", ipc.EntryExit)
		fmt.Fprintf(w, "ipc path\t%d\t\n", ipc.IPCPath)
		fmt.Fprintf(w, "tlb effects\t%d\t\n", ipc.TLBEffects)
		fmt.Fprintf(w, "same-AS total\t%d\t(%d calls)\n", ipc.SameOneWay, ipc.SameCount)
		fmt.Fprintf(w, "cross-AS total\t%d\t(%d calls)\n", ipc.CrossOneWay, ipc.CrossCount)
		w.Flush() //nolint:errcheck
	}

	vtlb := trace.ComputeVTLBBreakdown(d)
	if vtlb.Fills > 0 {
		fmt.Println("\nvTLB miss breakdown (Figure 9, cycles):")
		fmt.Fprintf(w, "exit+resume\t%d\t\n", vtlb.ExitResume)
		fmt.Fprintf(w, "vmread x6\t%d\t\n", vtlb.VMReads)
		fmt.Fprintf(w, "vtlb fill\t%d\t\n", vtlb.Fill)
		fmt.Fprintf(w, "per miss\t%d\t(%d fills, avg %d)\n", vtlb.PerMiss, vtlb.Fills, vtlb.AvgFill)
		w.Flush() //nolint:errcheck
	}
}

// chromeEvent is one trace_event record (JSON Array Format).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

func chrome(d *trace.TraceData) {
	mhz := float64(d.Meta.FreqMHz)
	if mhz == 0 {
		mhz = 1
	}
	us := func(c uint64) float64 { return float64(c) / mhz }
	var out []chromeEvent
	for _, e := range d.Events() {
		ce := chromeEvent{PID: 1, TID: int(e.CPU)}
		switch e.Kind {
		case trace.KindVMResume:
			// Render the whole exit-to-resume window as a span.
			ce.Name = "vmexit:" + exitName(d, e.A0)
			ce.Ph = "X"
			ce.Ts = us(uint64(e.Time) - e.A1)
			ce.Dur = us(e.A1)
		case trace.KindIPCReply:
			ce.Name = "ipc"
			ce.Ph = "X"
			ce.Ts = us(uint64(e.Time) - e.A1)
			ce.Dur = us(e.A1)
		case trace.KindVTLBFill:
			ce.Name = "vtlb-fill"
			ce.Ph = "X"
			ce.Ts = us(uint64(e.Time) - e.A1)
			ce.Dur = us(e.A1)
		case trace.KindVMExit:
			// The matching resume draws the span; skip the edge.
			continue
		default:
			ce.Name = kindName(d, e.Kind)
			ce.Ph = "i"
			ce.Ts = us(uint64(e.Time))
			ce.S = "t"
		}
		ce.Args = map[string]string{"detail": detail(d, e)}
		out = append(out, ce)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.Encode(out) //nolint:errcheck
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, strings.TrimRight(format, "\n")+"\n", args...)
	os.Exit(1)
}
