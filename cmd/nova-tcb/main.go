// Command nova-tcb prints the Figure 1 trusted-computing-base
// comparison and counts this repository's component sizes.
//
//	nova-tcb -root .
package main

import (
	"flag"
	"fmt"
	"os"

	"nova/internal/tcb"
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	live, err := tcb.CountRepo(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "count: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tcb.Format(live))
}
