// Command nova-run boots a guest workload under a chosen configuration
// and reports what happened: console output, VM-exit statistics and the
// CPU-utilization and timing measurements the paper's evaluation uses.
//
//	nova-run -workload compile -mode ept -model blm
//	nova-run -workload diskread -mode native
//	nova-run -workload boot -image bootsector.bin
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/prof"
	"nova/internal/services"
	"nova/internal/span"
	"nova/internal/stat"
	"nova/internal/trace"
	"nova/internal/vmm"
	"nova/internal/x86"
)

var models = map[string]hw.CPUModel{
	"k8": hw.K8, "k10": hw.K10, "ynh": hw.YNH,
	"cnr": hw.CNR, "wfd": hw.WFD, "blm": hw.BLM,
}

var modes = map[string]guest.Mode{
	"native": guest.ModeNative, "direct": guest.ModeDirect,
	"ept": guest.ModeVirtEPT, "vtlb": guest.ModeVirtVTLB,
}

func main() {
	workload := flag.String("workload", "compile", "compile|diskread|udprecv|boot")
	modeName := flag.String("mode", "ept", "native|direct|ept|vtlb")
	modelName := flag.String("model", "blm", "k8|k10|ynh|cnr|wfd|blm")
	image := flag.String("image", "", "boot-sector binary for -workload boot")
	maxCycles := flag.Uint64("max-cycles", 1<<34, "run budget in cycles")
	traceFile := flag.String("trace", "", "write the encoded event trace to this file (read it with nova-trace)")
	metricsFile := flag.String("metrics", "", "write counters and histograms as JSON to this file")
	traceCap := flag.Int("trace-capacity", 65536, "per-CPU event-ring capacity for -trace/-metrics")
	decodeCache := flag.Bool("decode-cache", true, "host-side decoded-instruction cache (results are bit-identical either way)")
	superblocks := flag.Bool("superblocks", true, "fused superblock execution on top of the decode cache (results are bit-identical either way)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the host process to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile of the host process to this file")
	profFile := flag.String("prof", "", "write a virtual-time guest profile to this file (read it with nova-prof)")
	profPeriod := flag.Uint64("prof-period", 10_000, "virtual cycles between profile samples for -prof")
	statsFile := flag.String("stats", "", "write the encoded resource-accounting snapshot to this file (read it with nova-stat)")
	statsEpoch := flag.Uint64("stats-epoch", 0, "virtual-time epoch length in cycles for -stats (0 = default)")
	spanFile := flag.String("span", "", "write the encoded request spans to this file (read it with nova-span)")
	spanCap := flag.Int("span-capacity", 65536, "per-CPU span-ring capacity for -span")
	flag.Parse()

	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	model, ok := models[*modelName]
	if !ok {
		fail("unknown model %q", *modelName)
	}
	mode, ok := modes[*modeName]
	if !ok {
		fail("unknown mode %q", *modeName)
	}

	if *workload == "boot" {
		runBoot(model, *image, *traceFile, *metricsFile, *traceCap, !*decodeCache, !*superblocks,
			*profFile, *profPeriod, *statsFile, hw.Cycles(*statsEpoch), *spanFile, *spanCap)
		stopProfiles()
		return
	}

	var opts guest.KernelOpts
	var params []uint32
	withDisk := false
	switch *workload {
	case "compile":
		opts = guest.CompileKernel(667)
		params = []uint32{20, 384, 32, 40000, 1}
		withDisk = true
	case "diskread":
		opts = guest.DiskChecksumKernel()
		params = []uint32{8, 50, 4096, 0, 0, 420}
		withDisk = true
	case "udprecv":
		opts = guest.UDPReceiveKernel()
		params = []uint32{500}
	default:
		fail("unknown workload %q", *workload)
	}

	img := guest.MustBuild(opts)
	cfg := guest.RunnerConfig{Model: model, Mode: mode, UseVPID: true, HostLargePages: true,
		DisableDecodeCache: !*decodeCache, DisableSuperblocks: !*superblocks}
	if withDisk && (mode == guest.ModeVirtEPT || mode == guest.ModeVirtVTLB) {
		cfg.WithDiskServer = true
	}
	if *traceFile != "" || *metricsFile != "" {
		if mode == guest.ModeNative {
			fail("-trace/-metrics require a virtualized mode (the tracer lives in the microhypervisor)")
		}
		cfg.TraceCapacity = *traceCap
	}
	if *profFile != "" {
		cfg.ProfilePeriod = *profPeriod
	}
	if *statsFile != "" {
		cfg.StatEpoch = hw.Cycles(*statsEpoch)
		if cfg.StatEpoch == 0 {
			cfg.StatEpoch = stat.DefaultEpochLen
		}
	}
	if *spanFile != "" {
		if mode == guest.ModeNative {
			fail("-span requires a virtualized mode (request origins live in the VMM and servers)")
		}
		cfg.SpanCapacity = *spanCap
	}
	r, err := guest.NewRunner(cfg, img)
	if err != nil {
		fail("setup: %v", err)
	}
	buf := make([]byte, len(params)*4)
	for i, p := range params {
		binary.LittleEndian.PutUint32(buf[i*4:], p)
	}
	r.WriteGuest(guest.ParamBase, buf)

	if *workload == "udprecv" {
		if err := r.RunUntilGuest32(guest.RxReadyAddr, 1, hw.Cycles(*maxCycles)); err != nil {
			fail("nic handshake: %v", err)
		}
		src := hw.NewPacketSource(r.Plat.NIC, r.Plat.Queue, r.Clock().Now,
			r.Plat.Cost.FreqMHz, 1472, 124, uint64(params[0]))
		src.Start()
	}

	cycles, err := r.RunUntilDone(hw.Cycles(*maxCycles))
	if err != nil {
		fail("run: %v", err)
	}

	fmt.Printf("workload %s on %s (%s): %d cycles = %.3f ms simulated time\n",
		*workload, r.Plat.Cost.Name, mode, cycles, r.Plat.Cost.CyclesToSeconds(cycles)*1000)
	fmt.Printf("CPU utilization: %.2f%%\n", r.BusyFraction()*100)
	if v := r.VCPU(); v != nil {
		fmt.Printf("VM exits: %d total, injections: %d\n", v.TotalExits(), v.InjectedIRQs)
		for reason := x86.ExitReason(0); int(reason) < x86.NumExitReasons; reason++ {
			if v.Exits[reason] > 0 {
				fmt.Printf("  %-20s %d\n", reason.String(), v.Exits[reason])
			}
		}
	}
	if r.K != nil {
		s := r.K.Stats
		fmt.Printf("kernel: %d hypercalls, %d IPC calls, %d host interrupts, %d vTLB fills, %d vTLB flushes\n",
			s.Hypercalls, s.IPCCalls, s.HostInterrupts, s.VTLBFills, s.VTLBFlushes)
	}
	if r.DS != nil {
		fmt.Printf("disk server: %d requests, %d sectors, %d IRQs\n",
			r.DS.Stats.Requests, r.DS.Stats.Sectors, r.DS.Stats.IRQs)
	}
	if r.VMM != nil && r.VMM.Console() != "" {
		fmt.Printf("console: %q\n", r.VMM.Console())
	}
	writeTraceOutputs(r.Tracer, *traceFile, *metricsFile)
	if *profFile != "" {
		b, err := r.EncodeProfile(hotSiteCode)
		if err != nil {
			fail("encode profile: %v", err)
		}
		writeProfile(*profFile, b, r.Prof)
	}
	if *statsFile != "" {
		b, err := r.EncodeStats()
		if err != nil {
			fail("encode stats: %v", err)
		}
		writeStats(*statsFile, b, r.Stat)
	}
	writeSpans(r.Spans, *spanFile)
}

// writeSpans saves the encoded request spans.
func writeSpans(sr *span.Recorder, path string) {
	if path == "" || sr == nil {
		return
	}
	b, err := sr.Encode()
	if err != nil {
		fail("encode spans: %v", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fail("write spans: %v", err)
	}
	fmt.Printf("spans: %s (%d opened, %d closed, hash %#x)\n", path, sr.Opened, sr.Closed, sr.Hash())
}

// writeStats saves an encoded resource-accounting snapshot.
func writeStats(path string, b []byte, r *stat.Registry) {
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fail("write stats: %v", err)
	}
	fmt.Printf("stats: %s (epoch length %d cycles)\n", path, r.EpochLen())
}

// hotSiteCode is how many of the hottest addresses get their
// instruction bytes captured into the profile for disassembly.
const hotSiteCode = 64

// writeProfile saves an encoded guest profile and prints a summary.
func writeProfile(path string, b []byte, p *prof.Profiler) {
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fail("write profile: %v", err)
	}
	fmt.Printf("profile: %s (%d samples, period %d cycles)\n",
		path, p.TotalSamples(), p.Meta.Period)
}

// writeTraceOutputs saves the encoded trace and/or the metrics JSON.
func writeTraceOutputs(tr *trace.Tracer, traceFile, metricsFile string) {
	if tr == nil {
		return
	}
	if traceFile != "" {
		b, err := tr.Encode()
		if err != nil {
			fail("encode trace: %v", err)
		}
		if err := os.WriteFile(traceFile, b, 0o644); err != nil {
			fail("write trace: %v", err)
		}
		fmt.Printf("trace: %s (%d events recorded, hash %#x)\n", traceFile, len(tr.Events()), tr.Hash())
	}
	if metricsFile != "" {
		b, err := json.MarshalIndent(tr.MetricsData(), "", "  ")
		if err != nil {
			fail("encode metrics: %v", err)
		}
		if err := os.WriteFile(metricsFile, append(b, '\n'), 0o644); err != nil {
			fail("write metrics: %v", err)
		}
		fmt.Printf("metrics: %s\n", metricsFile)
	}
}

// startProfiles begins host-side pprof profiling as requested and
// returns the stop/flush function. Profiles measure the simulator
// process itself (ROADMAP: "run as fast as the hardware allows"), never
// the simulated platform.
func startProfiles(cpuFile, memFile string) func() {
	var cf *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			fail("create cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("start cpu profile: %v", err)
		}
		cf = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cf != nil {
			pprof.StopCPUProfile()
			cf.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fail("create mem profile: %v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail("write mem profile: %v", err)
			}
			f.Close()
		}
	}
}

// runBoot performs the full BIOS boot path on a user-provided boot
// sector (or a built-in demo that prints via INT 10h).
func runBoot(model hw.CPUModel, imagePath, traceFile, metricsFile string, traceCap int,
	disableDecodeCache, disableSuperblocks bool, profFile string, profPeriod uint64,
	statsFile string, statsEpoch hw.Cycles, spanFile string, spanCap int) {
	var sector []byte
	if imagePath != "" {
		b, err := os.ReadFile(imagePath)
		if err != nil {
			fail("read image: %v", err)
		}
		sector = b
	} else {
		sector = x86.MustAssemble(`bits 16
org 0x7c00
	mov si, msg
next:
	mov al, [si]
	cmp al, 0
	jz done
	mov ah, 0x0e
	int 0x10
	inc si
	jmp next
done:
	hlt
	jmp done
msg:
	db "Hello from the NOVA virtual BIOS!", 0`)
	}
	if len(sector) > 512 {
		fail("boot sector is %d bytes (max 512)", len(sector))
	}
	padded := make([]byte, 512)
	copy(padded, sector)

	plat := hw.MustNewPlatform(hw.Config{Model: model, RAMSize: 128 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true,
		DisableDecodeCache: disableDecodeCache, DisableSuperblocks: disableSuperblocks})
	root := services.NewRootPM(k)
	ds, err := root.StartDiskServer()
	if err != nil {
		fail("disk server: %v", err)
	}
	if err := plat.AHCI.Disk().WriteSectors(0, 1, padded); err != nil {
		fail("write boot sector: %v", err)
	}
	base, err := root.AllocPages("vm", 1024)
	if err != nil {
		fail("alloc: %v", err)
	}
	m, err := vmm.New(k, vmm.Config{
		Name: "boot-vm", MemPages: 1024, BasePage: base, CPU: 0,
		Mode: hypervisor.ModeEPT, DiskServer: ds, BootDisk: plat.AHCI.Disk(),
	})
	if err != nil {
		fail("vmm: %v", err)
	}
	if err := m.Boot(); err != nil {
		fail("boot: %v", err)
	}
	if err := m.Start(10, 10_000_000); err != nil {
		fail("start: %v", err)
	}
	var tr *trace.Tracer
	if traceFile != "" || metricsFile != "" {
		tr = k.AttachTracer(traceCap)
	}
	if profFile != "" {
		k.AttachProfiler(profPeriod, 65536)
	}
	if statsFile != "" {
		k.AttachStats(statsEpoch)
	}
	if spanFile != "" {
		k.AttachSpans(spanCap)
	}
	k.Run(k.Now() + 500_000_000)
	fmt.Printf("console: %q\n", m.Console())
	fmt.Printf("BIOS calls: %d, VM exits: %d\n", m.Stats.BIOSCalls, m.EC.VCPU.TotalExits())
	if len(k.Killed) > 0 {
		fmt.Printf("killed: %v\n", k.Killed)
	}
	writeTraceOutputs(tr, traceFile, metricsFile)
	if profFile != "" {
		read := k.ProfCodeReader(m.EC)
		k.Prof.CaptureCode(hotSiteCode, read)
		b, err := k.Prof.Encode()
		if err != nil {
			fail("encode profile: %v", err)
		}
		writeProfile(profFile, b, k.Prof)
	}
	if statsFile != "" {
		b, err := k.Stat.Snapshot(k.Now()).Encode()
		if err != nil {
			fail("encode stats: %v", err)
		}
		writeStats(statsFile, b, k.Stat)
	}
	writeSpans(k.Spans, spanFile)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
