// Command nova-prof renders a guest profile captured with
// `nova-run -prof`. Three views:
//
//	nova-prof report run.prof            # summary + hot-address table
//	nova-prof folded run.prof            # folded stacks (flamegraph input)
//	nova-prof pprof -o run.pb run.prof   # pprof protobuf (go tool pprof)
//
// The folded output feeds any flamegraph renderer directly; the pprof
// output opens with `go tool pprof run.pb` and carries both sample
// counts and cycles, with mode and event labels for filtering.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"nova/internal/prof"
	"nova/internal/x86"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		fs := flag.NewFlagSet("report", flag.ExitOnError)
		top := fs.Int("top", 20, "rows in the hot-address table")
		fs.Parse(os.Args[2:]) //nolint:errcheck
		report(load(fs), *top)
	case "folded":
		fs := flag.NewFlagSet("folded", flag.ExitOnError)
		fs.Parse(os.Args[2:]) //nolint:errcheck
		for _, line := range load(fs).Folded() {
			fmt.Println(line)
		}
	case "pprof":
		fs := flag.NewFlagSet("pprof", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(os.Args[2:]) //nolint:errcheck
		writePprof(load(fs), *out)
	default:
		usage()
	}
}

func usage() {
	fail("usage: nova-prof report [-top N] FILE | folded FILE | pprof [-o FILE] FILE")
}

// load decodes the profile named by the flag set's one positional
// argument.
func load(fs *flag.FlagSet) *prof.Data {
	if fs.NArg() != 1 {
		usage()
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	d, err := prof.Decode(b)
	if err != nil {
		fail("%v", err)
	}
	return d
}

func report(d *prof.Data, top int) {
	m := d.Meta
	fmt.Printf("profile: %s @ %d MHz, %d CPU(s), period %d cycles, buffer capacity %d\n",
		m.Model, m.FreqMHz, m.NumCPUs, m.Period, m.Capacity)
	for cpu, samples := range d.Samples {
		line := fmt.Sprintf("cpu%d: %d samples", cpu, len(samples))
		if over := d.Overwritten[cpu]; over > 0 {
			line += fmt.Sprintf(", %d overwritten (raise the buffer capacity)", over)
		}
		fmt.Println(line)
	}

	// Time decomposition by mode, in grid points (= Period cycles each).
	var byMode [prof.NumModes]uint64
	var total uint64
	for _, per := range d.Samples {
		for _, s := range per {
			if int(s.Mode) < prof.NumModes {
				byMode[s.Mode] += s.Weight
				total += s.Weight
			}
		}
	}
	if total > 0 {
		fmt.Println("\nsampled time by mode:")
		for mode, w := range byMode {
			if w > 0 {
				fmt.Printf("  %-10s %8d samples  %5.1f%%\n",
					prof.Mode(mode), w, 100*float64(w)/float64(total))
			}
		}
	}

	// Exact-cost attribution totals per event kind.
	var counts, cycles [prof.NumAttribKinds]uint64
	for _, a := range d.Attrib {
		if int(a.Kind) < prof.NumAttribKinds {
			counts[a.Kind] += a.Count
			cycles[a.Kind] += a.Cycles
		}
	}
	if counts[prof.AttribExit]+counts[prof.AttribVTLBFill]+counts[prof.AttribEmulate] > 0 {
		fmt.Println("\nattributed virtualization events:")
		for kind := range counts {
			if counts[kind] > 0 {
				fmt.Printf("  %-10s %8d events  %12d cycles\n",
					prof.AttribKind(kind), counts[kind], cycles[kind])
			}
		}
	}

	hot := d.Hot(top)
	if len(hot) == 0 {
		return
	}
	fmt.Println("\nhot addresses (sampled + attributed cycles):")
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "ADDR\tSAMPLES\tEXITS\tFILLS\tEMULS\tCYCLES\tFUSE\tCODE")
	var fuseWeight, codeWeight uint64
	for _, h := range hot {
		mark := fuseMark(d, h.Addr, h.Def32)
		if mark != "" {
			codeWeight += h.Samples
			if mark == "fuse" {
				fuseWeight += h.Samples
			}
		}
		fmt.Fprintf(w, "0x%08x\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			h.Addr, h.Samples, h.Exits, h.Fills, h.Emuls, h.TotalCycles(),
			mark, disasm(d, h.Addr, h.Def32))
	}
	w.Flush() //nolint:errcheck
	if codeWeight > 0 {
		fmt.Printf("\nfusibility: %.1f%% of the sampled weight at hot addresses with captured code\n"+
			"is superblock-fusible (see `fuse` rows); fusible runs of length >= 2 execute\n"+
			"as fused blocks when no profiler is attached\n",
			100*float64(fuseWeight)/float64(codeWeight))
	}
}

// fuseMark classifies a hot address for the superblock layer: "fuse"
// when the captured instruction is fusible (x86.InstFusible — it can
// sit inside a fused superblock), "-" when it forces single-stepping
// (memory operand, privileged, faulting, extra-cycle forms), and empty
// when the profile carries no code bytes for the site.
func fuseMark(d *prof.Data, addr uint32, def32 bool) string {
	for _, site := range d.Code {
		if site.Addr != addr || site.Def32 != def32 {
			continue
		}
		inst, err := x86.Decode(&x86.BytesFetcher{Data: site.Bytes}, site.Def32)
		if err != nil {
			return ""
		}
		if x86.InstFusible(inst) {
			return "fuse"
		}
		return "-"
	}
	return ""
}

// disasm renders the captured instruction bytes at a hot address, if
// the profile carries them.
func disasm(d *prof.Data, addr uint32, def32 bool) string {
	for _, site := range d.Code {
		if site.Addr != addr || site.Def32 != def32 {
			continue
		}
		inst, err := x86.Decode(&x86.BytesFetcher{Data: site.Bytes}, site.Def32)
		if err != nil {
			return fmt.Sprintf("db %02x...", site.Bytes[0])
		}
		return inst.String()
	}
	return ""
}

func writePprof(d *prof.Data, out string) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := d.WritePprof(w); err != nil {
		fail("write pprof: %v", err)
	}
	if out != "" {
		fmt.Printf("pprof: %s (open with `go tool pprof %s`)\n", out, out)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
