// Command nova-vet runs the NOVA invariant analyzers over the
// repository and fails on any finding that is not in the checked-in
// baseline. Usage:
//
//	nova-vet ./...               # the CI / pre-commit gate
//	nova-vet -list               # describe the analyzers
//	nova-vet -write-baseline ./... # regenerate nova-vet.baseline
//
// The analyzers (internal/analysis) enforce what the compiler cannot:
// determinism of the cycle-accounted simulation, the hypercall
// capability-validation discipline, cycle accounting on mutating entry
// points, and panic-freedom of shared kernel/device paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nova/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	verbose := flag.Bool("v", false, "also print baseline-suppressed findings")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline to accept all current findings")
	baselinePath := flag.String("baseline", "", "baseline file (default <repo root>/"+analysis.BaselineFile+")")
	flag.Parse()

	if *list {
		for _, e := range analysis.DefaultSuite() {
			scope := "all packages"
			if e.Paths != nil {
				scope = fmt.Sprint(e.Paths)
			}
			fmt.Printf("%-12s %s\n%14s scope: %s\n", e.Analyzer.Name, e.Analyzer.Doc, "", scope)
		}
		return
	}

	root, err := findRepoRoot()
	if err != nil {
		fatal(err)
	}

	// Arguments are accepted for familiarity ("./..."), but the suite's
	// per-analyzer package policy decides what each check covers; any
	// argument other than the full tree is rejected rather than
	// silently narrowing the gate.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fatal(fmt.Errorf("nova-vet checks the whole repository; run it as: nova-vet ./... (got %q)", arg))
		}
	}

	diags, err := analysis.RunSuite(root)
	if err != nil {
		fatal(err)
	}

	bp := *baselinePath
	if bp == "" {
		bp = filepath.Join(root, analysis.BaselineFile)
	}

	if *writeBaseline {
		if err := os.WriteFile(bp, []byte(analysis.FormatBaseline(root, diags)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("nova-vet: wrote %d finding(s) to %s\n", len(diags), bp)
		return
	}

	baseline, err := analysis.LoadBaseline(bp)
	if err != nil {
		fatal(err)
	}
	kept, suppressed, stale := analysis.ApplyBaseline(root, diags, baseline)

	if *verbose && suppressed > 0 {
		fmt.Printf("nova-vet: %d finding(s) suppressed by %s\n", suppressed, bp)
	}
	for _, key := range stale {
		fmt.Fprintf(os.Stderr, "nova-vet: stale baseline entry (finding fixed — delete the line): %s\n", key)
	}
	if len(kept) > 0 {
		for _, d := range kept {
			rel := d
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
		fmt.Fprintf(os.Stderr, "nova-vet: %d new finding(s); fix them or (exceptionally) baseline with -write-baseline\n", len(kept))
		os.Exit(1)
	}
	fmt.Printf("nova-vet: ok (%d analyzer(s), %d baselined)\n", len(analysis.DefaultSuite()), suppressed)
}

// findRepoRoot walks up from the working directory to the module root.
func findRepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nova-vet: no go.mod above %s (run from inside the repository)", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
