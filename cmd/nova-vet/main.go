// Command nova-vet runs the NOVA invariant analyzers over the
// repository and fails on any finding that is not in the checked-in
// baseline. Usage:
//
//	nova-vet ./...               # the CI / pre-commit gate
//	nova-vet -list               # describe the analyzers
//	nova-vet -json ./...         # machine-readable findings + timings
//	nova-vet -run capflow,taint ./... # iterate on an analyzer subset
//	nova-vet -write-baseline ./... # regenerate nova-vet.baseline
//
// Exit codes form a contract for CI and tooling: 0 means the tree is
// clean (modulo baseline), 1 means new findings were reported, 2 means
// the suite itself could not run (load or type-check error, bad usage).
//
// The analyzers (internal/analysis) enforce what the compiler cannot:
// determinism of the cycle-accounted simulation, the hypercall
// capability-validation discipline, cycle accounting on mutating entry
// points, panic-freedom of shared kernel/device paths, exhaustive
// dispatch over VM-exit style enums, the guest-taint trust boundary
// (no guest-controlled value reaching an index, length, shift or
// physical address unchecked), and machine-state isolation for the
// parallel multi-VM engine: package-level vars must be init-only or
// audited (globalstate), the per-machine step path may write only
// machine-reachable state (isolation), and concurrency primitives are
// banned outside the // epoch-barrier: gate (concurrency).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nova/internal/analysis"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the -json document. Findings excludes baselined
// diagnostics; Stale lists baseline entries whose finding is fixed;
// Timings gives each analyzer's wall-clock share of the run so CI can
// track which check is eating the budget.
type jsonReport struct {
	Findings   []jsonFinding     `json:"findings"`
	Suppressed int               `json:"suppressed"`
	Stale      []string          `json:"stale,omitempty"`
	Timings    []analysis.Timing `json:"timings"`
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	verbose := flag.Bool("v", false, "also print baseline-suppressed findings")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline to accept all current findings")
	baselinePath := flag.String("baseline", "", "baseline file (default <repo root>/"+analysis.BaselineFile+")")
	runNames := flag.String("run", "", "comma-separated analyzer subset to run (default: the full suite)")
	flag.Parse()

	if *list {
		for _, e := range analysis.DefaultSuite() {
			scope := "all packages"
			if e.Paths != nil {
				scope = fmt.Sprint(e.Paths)
			}
			fmt.Printf("%-12s %s\n%14s scope: %s\n", e.Analyzer.Name, e.Analyzer.Doc, "", scope)
		}
		return
	}

	root, err := findRepoRoot()
	if err != nil {
		fatal(err)
	}

	// Arguments are accepted for familiarity ("./..."), but the suite's
	// per-analyzer package policy decides what each check covers; any
	// argument other than the full tree is rejected rather than
	// silently narrowing the gate.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fatal(fmt.Errorf("nova-vet checks the whole repository; run it as: nova-vet ./... (got %q)", arg))
		}
	}

	// -run narrows the suite for iteration on one analyzer. It is a
	// development convenience, not a gate configuration: the baseline
	// may only be rewritten from a full run, and baseline entries
	// belonging to un-run analyzers are not reported as stale.
	entries := analysis.DefaultSuite()
	filtered := *runNames != ""
	if filtered {
		if *writeBaseline {
			fatal(fmt.Errorf("nova-vet: -run cannot be combined with -write-baseline (the baseline must reflect the full suite)"))
		}
		var err error
		entries, err = analysis.SelectEntries(strings.Split(*runNames, ","))
		if err != nil {
			fatal(err)
		}
	}

	diags, timings, err := analysis.RunEntries(root, entries)
	if err != nil {
		fatal(err)
	}

	bp := *baselinePath
	if bp == "" {
		bp = filepath.Join(root, analysis.BaselineFile)
	}

	if *writeBaseline {
		if err := os.WriteFile(bp, []byte(analysis.FormatBaseline(root, diags)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("nova-vet: wrote %d finding(s) to %s\n", len(diags), bp)
		return
	}

	baseline, err := analysis.LoadBaseline(bp)
	if err != nil {
		fatal(err)
	}
	kept, suppressed, stale := analysis.ApplyBaseline(root, diags, baseline)
	if filtered {
		stale = nil // un-run analyzers' entries are not stale, just unchecked
	}

	if *jsonOut {
		report := jsonReport{Findings: []jsonFinding{}, Suppressed: suppressed, Stale: stale, Timings: timings}
		for _, d := range kept {
			file := d.Pos.Filename
			if r, err := filepath.Rel(root, file); err == nil {
				file = r
			}
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     filepath.ToSlash(file),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
		if len(kept) > 0 {
			os.Exit(1)
		}
		return
	}

	if *verbose && suppressed > 0 {
		fmt.Printf("nova-vet: %d finding(s) suppressed by %s\n", suppressed, bp)
	}
	for _, key := range stale {
		fmt.Fprintf(os.Stderr, "nova-vet: stale baseline entry (finding fixed — delete the line): %s\n", key)
	}
	if len(kept) > 0 {
		for _, d := range kept {
			rel := d
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
		fmt.Fprintf(os.Stderr, "nova-vet: %d new finding(s); fix them or (exceptionally) baseline with -write-baseline\n", len(kept))
		os.Exit(1)
	}
	fmt.Printf("nova-vet: ok (%d analyzer(s), %d baselined)\n", len(entries), suppressed)
}

// findRepoRoot walks up from the working directory to the module root.
func findRepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nova-vet: no go.mod above %s (run from inside the repository)", dir)
		}
		dir = parent
	}
}

// fatal reports a suite failure (load error, bad usage): exit code 2,
// distinct from exit 1 (findings) per the documented contract.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
