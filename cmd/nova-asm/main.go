// Command nova-asm assembles the x86 subset used by the guest kernels
// into a flat binary.
//
//	nova-asm -o boot.bin boot.asm
package main

import (
	"flag"
	"fmt"
	"os"

	"nova/internal/x86"
)

func main() {
	out := flag.String("o", "a.bin", "output file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nova-asm [-o out.bin] input.asm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin, err := x86.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, bin, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d bytes\n", *out, len(bin))
}
