// Command nova-span renders a request-span file captured with
// `nova-run -span` (or any other span.Recorder user). Three views:
//
//	nova-span run.spans                   # per-class tails + critical paths
//	nova-span -format chrome run.spans    # Chrome trace_event JSON
//	nova-span -format json run.spans      # the full report as JSON
//
// The report view shows, per request class, the exact p50/p99/p999
// virtual-time latency over every completed request plus the
// critical-path decomposition into guest / kernel-IPC / emulation /
// server / queueing segments; -requests N additionally dumps the first
// N individual requests with their per-segment paths (each summing
// exactly to the request's end-to-end latency).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"nova/internal/span"
)

func main() {
	format := flag.String("format", "report", "report|chrome|json")
	requests := flag.Int("requests", 0, "in report format, also dump the first N individual requests")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: nova-span [-format report|chrome|json] [-requests N] FILE")
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	d, err := span.Decode(b)
	if err != nil {
		fail("%v", err)
	}
	warnTruncation(d)
	spans := span.BuildSpans(d)
	switch *format {
	case "report":
		report(d, spans, *requests)
	case "chrome":
		chrome(d, spans)
	case "json":
		rep := span.BuildReport(d, spans)
		out := struct {
			Meta   span.Meta    `json:"meta"`
			Report *span.Report `json:"report"`
			Spans  []*span.Span `json:"spans"`
		}{d.Meta, rep, spans}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck
	default:
		fail("unknown format %q", *format)
	}
}

// warnTruncation prints one stderr notice per CPU whose span ring
// wrapped: spans whose open record was overwritten are dropped from the
// reconstruction, so the report covers only the tail of the run.
func warnTruncation(d *span.Data) {
	for cpu, n := range d.Overwritten {
		if n > 0 {
			fmt.Fprintf(os.Stderr,
				"nova-span: warning: cpu%d ring overwrote %d records; the report covers only the tail of the run (raise -span-capacity)\n",
				cpu, n)
		}
	}
}

func report(d *span.Data, spans []*span.Span, requests int) {
	rep := span.BuildReport(d, spans)
	fmt.Printf("spans: %s @ %d MHz, %d CPU(s), ring capacity %d\n",
		d.Meta.Model, d.Meta.FreqMHz, d.Meta.NumCPUs, d.Meta.RingCapacity)
	fmt.Printf("requests: %d opened, %d closed over the whole run\n\n", rep.Opened, rep.Closed)

	mhz := float64(d.Meta.FreqMHz)
	if mhz == 0 {
		mhz = 1
	}
	us := func(c uint64) float64 { return float64(c) / mhz }

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', tabwriter.AlignRight)
	fmt.Println("virtual-time latency per request class (cycles; exact percentiles):")
	fmt.Fprintln(w, "class\tcount\topen\tfailed\tmin\tmean\tp50\tp99\tp999\tmax\t")
	for _, c := range rep.Classes {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			c.Class, c.Count, c.Open, c.Failed, c.Min, c.Mean, c.P50, c.P99, c.P999, c.Max)
	}
	w.Flush() //nolint:errcheck

	for _, c := range rep.Classes {
		if len(c.Segs) == 0 {
			continue
		}
		var total int64
		for _, s := range c.Segs {
			total += s.Total
		}
		fmt.Printf("\n%s critical path (%d requests):\n", c.Class, c.Count)
		for _, s := range c.Segs {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(s.Total) / float64(total)
			}
			fmt.Fprintf(w, "%s\t%d\tcycles\t%d\tavg\t%5.1f%%\t\n", s.Seg, s.Total, s.Avg, pct)
		}
		w.Flush() //nolint:errcheck
	}

	if requests > 0 {
		fmt.Printf("\nindividual requests (first %d):\n", requests)
		n := 0
		for _, s := range spans {
			if n >= requests {
				break
			}
			n++
			status := "open"
			if s.Closed {
				switch s.Status {
				case span.StatusOK:
					status = "ok"
				case span.StatusError:
					status = "error"
				case span.StatusNoIRQ:
					status = "ok-no-irq"
				default:
					status = fmt.Sprintf("status-%d", s.Status)
				}
			}
			fmt.Printf("#%d %s detail=%d cpu=%d open=%d", uint64(s.ID), s.Name, s.Detail, s.CPU, s.Open)
			if s.Closed {
				fmt.Printf(" close=%d latency=%d [%s]", s.End, s.Duration(), status)
			} else {
				fmt.Printf(" [%s]", status)
			}
			fmt.Println()
			var sum int64
			for _, p := range s.Path {
				fmt.Printf("    %-12s @%d  %d cycles (%.2f us)\n", p.Name, p.Start, p.Dur, us(uint64(p.Dur))/1)
				sum += p.Dur
			}
			for _, a := range s.Annot {
				fmt.Printf("    annot key=%d val=%d\n", a.Key, a.Val)
			}
			if s.Closed && len(s.Path) > 0 {
				fmt.Printf("    path sum = %d (end-to-end %d)\n", sum, s.Duration())
			}
		}
	}
}

// chromeEvent is one trace_event record (JSON Array Format), matching
// the nova-trace chrome renderer so both files load side by side.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

func chrome(d *span.Data, spans []*span.Span) {
	mhz := float64(d.Meta.FreqMHz)
	if mhz == 0 {
		mhz = 1
	}
	us := func(c int64) float64 { return float64(c) / mhz }
	var out []chromeEvent
	for _, s := range spans {
		id := fmt.Sprintf("%d", uint64(s.ID))
		for _, p := range s.Path {
			if p.Dur <= 0 {
				continue // cross-CPU clock skew can yield non-positive hops
			}
			out = append(out, chromeEvent{
				Name: s.Name + ":" + p.Name,
				Ph:   "X",
				Ts:   us(int64(p.Start)),
				Dur:  us(p.Dur),
				PID:  1,
				TID:  int(s.CPU),
				Args: map[string]string{"span": id, "detail": fmt.Sprintf("%d", s.Detail)},
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.Encode(out) //nolint:errcheck
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, strings.TrimRight(format, "\n")+"\n", args...)
	os.Exit(1)
}
