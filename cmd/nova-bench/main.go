// Command nova-bench regenerates the paper's evaluation: every figure
// and table of §8, plus the ablations of this reproduction's DESIGN.md.
//
//	nova-bench -experiment all -scale quick
//	nova-bench -experiment fig5 -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"nova/internal/bench"
	"nova/internal/tcb"
	"nova/internal/walltime"
)

func main() {
	experiment := flag.String("experiment", "all",
		"fig1|fig5|fig6|fig7|fig8|fig9|tab1|tab2|ablations|hostperf|all")
	scaleName := flag.String("scale", "quick", "quick|full")
	root := flag.String("root", ".", "repository root for the fig1 line count")
	out := flag.String("out", "", "write results as JSON to this file (e.g. BENCH_quick.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the host process to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile of the host process to this file")
	compare := flag.Bool("compare", false,
		"compare two report files (BASELINE.json NEW.json) instead of running; exit 1 on deterministic drift")
	flag.Parse()

	if *compare {
		compareReports(flag.Args())
		return
	}

	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "full":
		sc = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	report := &bench.Report{Scale: *scaleName}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		// Host-side progress timing only; simulated results are in
		// virtual cycles (see internal/walltime's package comment).
		sw := walltime.Start()
		fmt.Printf("==== %s ====\n", strings.ToUpper(name))
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		sec := sw.Seconds()
		report.SetHostSeconds(name, sec)
		fmt.Printf("(%s finished in %.1fs)\n\n", name, sec)
	}

	run("fig1", func() error {
		live, err := tcb.CountRepo(*root)
		if err != nil {
			live = nil // still print the paper comparison
		}
		fmt.Println(tcb.Format(live))
		return nil
	})
	run("tab1", func() error {
		t := bench.RunTab1()
		report.Add("tab1", t)
		fmt.Println(t)
		return nil
	})
	run("fig5", func() error {
		t, _, err := bench.RunFig5(sc)
		if err != nil {
			return err
		}
		report.Add("fig5", t)
		fmt.Println(t)
		return nil
	})
	run("fig6", func() error {
		t, _, err := bench.RunFig6(sc)
		if err != nil {
			return err
		}
		report.Add("fig6", t)
		fmt.Println(t)
		return nil
	})
	run("fig7", func() error {
		t, _, err := bench.RunFig7(sc)
		if err != nil {
			return err
		}
		report.Add("fig7", t)
		fmt.Println(t)
		return nil
	})
	run("fig8", func() error {
		t, _, err := bench.RunFig8()
		if err != nil {
			return err
		}
		report.Add("fig8", t)
		fmt.Println(t)
		return nil
	})
	run("fig9", func() error {
		t, _, err := bench.RunFig9()
		if err != nil {
			return err
		}
		report.Add("fig9", t)
		fmt.Println(t)
		return nil
	})
	run("tab2", func() error {
		t, _, err := bench.RunTab2(sc)
		if err != nil {
			return err
		}
		report.Add("tab2", t)
		fmt.Println(t)
		return nil
	})
	run("ablations", func() error {
		t, _, err := bench.RunAblations(sc)
		if err != nil {
			return err
		}
		report.Add("ablations", t)
		fmt.Println(t)
		return nil
	})
	run("hostperf", func() error {
		t, err := bench.RunHostPerf(sc)
		if err != nil {
			return err
		}
		report.Add("hostperf", t)
		fmt.Println(t)
		return nil
	})

	stopProfiles()

	if *out != "" {
		b, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: %s (%d experiments)\n", *out, len(report.Experiments))
	}
}

// compareReports diffs two bench report files. Deterministic drift
// (simulated results that changed) exits 1 so CI fails; host-dependent
// differences (wall-clock, Go version, host-throughput rows) are
// printed as advisory and never fail the comparison.
func compareReports(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: nova-bench -compare BASELINE.json NEW.json")
		os.Exit(2)
	}
	baseline, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	current, err := os.ReadFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	res, err := bench.Compare(baseline, current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		os.Exit(2)
	}
	for _, a := range res.Advisory {
		fmt.Printf("advisory: %s\n", a)
	}
	if res.Failed() {
		fmt.Printf("DRIFT: %d deterministic difference(s) between %s and %s:\n", len(res.Drift), args[0], args[1])
		for _, d := range res.Drift {
			fmt.Printf("  %s\n", d)
		}
		fmt.Println("simulated results changed; investigate, or refresh the baseline if intentional")
		os.Exit(1)
	}
	fmt.Printf("OK: %s and %s agree on all deterministic fields\n", args[0], args[1])
}

// startProfiles begins host-side pprof profiling as requested and
// returns the stop/flush function (idempotent). Profiles measure the
// simulator process, never the simulated platform.
func startProfiles(cpuFile, memFile string) func() {
	var cf *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create cpu profile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
		cf = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cf != nil {
			pprof.StopCPUProfile()
			cf.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "create mem profile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "write mem profile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
