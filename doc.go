// Package nova is a from-scratch Go reproduction of "NOVA: A
// Microhypervisor-Based Secure Virtualization Architecture" (Steinberg
// and Kauer, EuroSys 2010).
//
// Because a Go runtime cannot occupy VMX root mode, the reproduction
// runs the complete NOVA architecture — microhypervisor, capability
// system, root partition manager, per-VM user-level VMMs with an x86
// instruction emulator and virtual BIOS, disk server with IOMMU-confined
// DMA — on a deterministic, cycle-accounted simulation of an x86
// platform whose guests are genuine machine code executed by an
// interpreter. See DESIGN.md for the substitution table and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
//
// Layout:
//
//	internal/hw         simulated platform (memory, TLB, devices, IOMMU)
//	internal/x86        ISA layer: decoder, interpreter, paging, assembler
//	internal/cap        capability spaces and the mapping database
//	internal/hypervisor the NOVA microhypervisor
//	internal/vmm        user-level virtual-machine monitor
//	internal/services   root partition manager, disk server, console
//	internal/guest      guest operating systems (real x86 kernels)
//	internal/bench      regenerates every figure and table of §8
//	internal/tcb        Figure 1 TCB accounting
//	cmd/nova-bench      run the evaluation
//	cmd/nova-run        boot and run guests
//	cmd/nova-asm        the assembler CLI
//	cmd/nova-tcb        TCB line counting
package nova
